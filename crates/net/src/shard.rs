//! The deterministic sharded executor: the engine behind [`crate::run`].
//!
//! A scenario is partitioned into **interference cells** — connected
//! components of the carrier–receiver graph its tag list induces (a tag
//! links its illuminating carrier to its destination receiver). Each cell
//! runs a complete [`crate::engine`] core on its own timing wheel; the
//! cells advance in lockstep over a shared **epoch clock**
//! ([`crate::scenario::ExecutionConfig::epoch_s`]) and exchange
//! cross-cell interference at every epoch boundary.
//!
//! ## Determinism contract
//!
//! The cell structure is derived from the *scenario alone* — never from
//! the shard count. [`crate::scenario::ExecutionConfig::shards`] only
//! chunks the fixed cell list into contiguous worker groups through
//! [`rayon::det::for_each_mut_ordered`], whose result state is identical
//! at any group count by construction. Consequently the event trace, its
//! FNV-1a digest, the metrics and the telemetry report are **byte
//! identical at every shard count** (1, 2, 4, 8, …) — pinned by the
//! `net_sharding` matrix test on every closed-loop preset.
//!
//! Two regimes:
//!
//! * **Single cell** (every bedside preset: shared receivers couple all
//!   carriers). The executor runs the *original* scenario on one engine
//!   core, chunked through [`crate::event::EventQueue::pop_before`] —
//!   provably the same pops in the same order as one straight run, so the
//!   digest is byte-identical to the legacy
//!   [`crate::engine::NetworkSim::run`] at any shard count.
//! * **Multiple cells** (`campus`, the multi-hub `zigbee_wing`). Each
//!   cell becomes a sub-scenario over its own entities (indices remapped,
//!   relative order preserved); trace lines carry a `c{cell}| ` prefix
//!   and are merged by `(time, cell, emission order)`. The digest is new
//!   relative to the unsharded engine — the cell-local RNG streams are
//!   keyed by cell-local entity ids — but invariant in the shard count.
//!
//! ## Cross-cell interference exchange
//!
//! Inside an epoch, cells are independent. Every in-model transmission
//! charges its banded airtime to a per-cell boundary accumulator
//! ([`crate::engine`]'s `BoundaryAccum`); at each epoch boundary the
//! executor drains all accumulators and injects, into every *other* cell,
//! one **hidden ghost window** per band summing the foreign airtime (a
//! `CoexSource` ghost proxy emits it at the foreign carriers' centroid,
//! clamped to one epoch). Ghost windows collide and raise sensed
//! occupancy exactly like any hidden external emission, so cross-cell
//! collisions survive partitioning with a one-epoch reporting lag — the
//! documented relaxation of this executor. Real coex sources are
//! replicated into every cell with their global RNG stream indices, so
//! their emission processes stay globally aligned; their counters are
//! reported from cell 0's perspective.
//!
//! Everything cross-shard flows through the drain → merge → inject path
//! at epoch boundaries; detlint's `shard_exchange` rule fails any
//! sync-primitive side channel that would bypass it.

use crate::coex::{CoexConfig, CoexModel, CoexSource};
use crate::engine::{band_order, EngineCore, NetRunResult};
use crate::entities::Position;
use crate::event::{EventTrace, TraceRecord};
use crate::medium::Band;
use crate::metrics::{NetworkMetrics, ShardLoad, DISPLACEMENT_BIN_M, OCCUPANCY_BIN};
use crate::prof::Profiler;
use crate::scenario::{ExecutionConfig, Scenario};
use crate::telemetry::{MetricsMode, RateBins, SinkReport, TelemetryReport};
use crate::time::Time;
use crate::NetError;

/// One interference cell of a partitioned scenario: the global indices of
/// the entities it simulates, each list ascending (so cell-local index
/// order mirrors global order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cell {
    /// Global carrier indices.
    pub carriers: Vec<usize>,
    /// Global tag indices.
    pub tags: Vec<usize>,
    /// Global receiver indices.
    pub receivers: Vec<usize>,
}

fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        // Always merge toward the lower root so component roots are a
        // pure function of the edge set, not the union order.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi] = lo;
    }
}

fn whole_cell(scenario: &Scenario) -> Cell {
    Cell {
        carriers: (0..scenario.carriers.len()).collect(),
        tags: (0..scenario.tags.len()).collect(),
        receivers: (0..scenario.receivers.len()).collect(),
    }
}

/// Partitions `scenario` into its interference cells: connected
/// components of the carrier–receiver graph (a tag is an edge between its
/// carrier and its receiver), ordered by smallest carrier index.
///
/// Entities no tag references — tagless carriers, unreferenced receivers
/// — fold into cell 0. Scenarios with a mobility model or an adaptive
/// re-striping policy fold to a single cell: both re-tune entities across
/// cell boundaries mid-run, which the epoch exchange deliberately does
/// not model. The result depends only on the scenario, never on the
/// shard count.
pub fn partition(scenario: &Scenario) -> Vec<Cell> {
    let nc = scenario.carriers.len();
    let nr = scenario.receivers.len();
    let restripes = scenario.coex.as_ref().is_some_and(|c| c.restripe.is_some());
    if scenario.mobility.is_some() || restripes {
        return vec![whole_cell(scenario)];
    }

    // Union-find over carriers [0, nc) and receivers [nc, nc + nr).
    let mut parent: Vec<usize> = (0..nc + nr).collect();
    let mut has_tags = vec![false; nc];
    for tag in &scenario.tags {
        union(&mut parent, tag.carrier, nc + tag.receiver);
        has_tags[tag.carrier] = true;
    }

    let mut cells: Vec<Cell> = Vec::new();
    let mut cell_of_root: Vec<Option<usize>> = vec![None; nc + nr];
    let mut cell_of_carrier: Vec<usize> = vec![0; nc];
    for c in 0..nc {
        if !has_tags[c] {
            continue;
        }
        let root = find(&mut parent, c);
        let idx = *cell_of_root[root].get_or_insert_with(|| {
            cells.push(Cell::default());
            cells.len() - 1
        });
        cells[idx].carriers.push(c);
        cell_of_carrier[c] = idx;
    }
    if cells.len() <= 1 {
        return vec![whole_cell(scenario)];
    }
    // Tagless carriers contend in cell 0 (they emit tones but illuminate
    // nobody); re-sort so local order still mirrors global order.
    for (c, tagged) in has_tags.iter().enumerate() {
        if !tagged {
            cells[0].carriers.push(c);
        }
    }
    cells[0].carriers.sort_unstable();
    for (t, tag) in scenario.tags.iter().enumerate() {
        cells[cell_of_carrier[tag.carrier]].tags.push(t);
    }
    for s in 0..nr {
        let root = find(&mut parent, nc + s);
        let idx = cell_of_root[root].unwrap_or(0);
        cells[idx].receivers.push(s);
    }
    cells
}

/// A dense global → cell-local index map (`None` outside the cell).
fn local_map(n: usize, members: &[usize]) -> Vec<Option<usize>> {
    let mut map = vec![None; n];
    for (local, &global) in members.iter().enumerate() {
        map[global] = Some(local);
    }
    map
}

/// The ghost coex source standing in for every carrier *outside* `cell`:
/// placed at the foreign carriers' centroid, transmitting at their peak
/// power, silent on its own RNG stream (the executor schedules its
/// windows at epoch boundaries).
fn ghost_for(scenario: &Scenario, in_cell: &[Option<usize>]) -> CoexSource {
    let (mut x, mut y, mut z, mut n) = (0.0, 0.0, 0.0, 0usize);
    let mut power = f64::NEG_INFINITY;
    for (c, carrier) in scenario.carriers.iter().enumerate() {
        if in_cell[c].is_some() {
            continue;
        }
        let p = carrier.position();
        x += p.x;
        y += p.y;
        z += p.z;
        n += 1;
        power = power.max(carrier.tx_power_dbm);
    }
    debug_assert!(n > 0, "ghost_for on a cell containing every carrier");
    let scale = n.max(1) as f64;
    CoexSource::ghost(Position::new(x / scale, y / scale, z / scale), power)
}

/// Builds cell `cell`'s sub-scenario: its entities with indices remapped
/// (relative order preserved), mobility/re-striping off (the partitioner
/// folded those to one cell), all real coex sources replicated at their
/// global stream indices plus the ghost proxy appended last, and per-cell
/// progress stripped (the executor emits epoch progress itself).
fn sub_scenario(scenario: &Scenario, cell: &Cell) -> Scenario {
    let carrier_local = local_map(scenario.carriers.len(), &cell.carriers);
    let tag_local = local_map(scenario.tags.len(), &cell.tags);
    let rx_local = local_map(scenario.receivers.len(), &cell.receivers);

    let carriers = cell
        .carriers
        .iter()
        .map(|&c| scenario.carriers[c].clone())
        .collect();
    let receivers = cell
        .receivers
        .iter()
        .map(|&s| scenario.receivers[s].clone())
        .collect();
    let tags = cell
        .tags
        .iter()
        .map(|&t| {
            let mut tag = scenario.tags[t].clone();
            tag.carrier = carrier_local[tag.carrier].expect("tag's carrier is in its cell");
            tag.receiver = rx_local[tag.receiver].expect("tag's receiver is in its cell");
            tag
        })
        .collect();

    // Real sources keep their global indices 0..n-1 (their RNG streams are
    // keyed by index, so emission processes stay aligned across cells);
    // the ghost rides at index n. Constant scalars are per-sink: remap
    // in-cell sinks, neutralize out-of-cell ones in place so they do not
    // shift the indices of the emitting sources behind them. A scenario
    // without a coex config gets the constant-occupancy bridge instead,
    // preserving the legacy per-sink scalar fold exactly.
    let mut sources: Vec<CoexSource> = match &scenario.coex {
        Some(cfg) => cfg
            .sources
            .iter()
            .map(|source| {
                let mut source = *source;
                if let CoexModel::Constant(c) = &mut source.model {
                    match rx_local[c.sink] {
                        Some(local) => c.sink = local,
                        None => {
                            c.sink = 0;
                            c.occupancy = 0.0;
                        }
                    }
                }
                source
            })
            .collect(),
        None => cell
            .receivers
            .iter()
            .enumerate()
            .map(|(local, &s)| {
                CoexSource::constant(local, scenario.receivers[s].external_occupancy)
            })
            .collect(),
    };
    sources.push(ghost_for(scenario, &carrier_local));
    let coex = CoexConfig {
        sources,
        sense: scenario.coex.as_ref().map(|c| c.sense).unwrap_or_default(),
        restripe: None,
    };

    let mut telemetry = scenario.telemetry.clone();
    telemetry.progress_every_s = None;
    telemetry.live_progress = false;
    for sub in &mut telemetry.subscriptions {
        if let Some(tags) = &mut sub.filter.tags {
            *tags = tags.iter().filter_map(|&t| tag_local[t]).collect();
        }
        if let Some(carriers) = &mut sub.filter.carriers {
            *carriers = carriers.iter().filter_map(|&c| carrier_local[c]).collect();
        }
    }

    Scenario {
        name: scenario.name.clone(),
        duration_s: scenario.duration_s,
        carriers,
        tags,
        receivers,
        cts_to_self: scenario.cts_to_self,
        max_queue: scenario.max_queue,
        mac: scenario.mac,
        mobility: None,
        scheduler: scenario.scheduler,
        coex: Some(coex),
        telemetry,
        execution: ExecutionConfig {
            // Profiling rides into the cell cores (their init/epoch spans);
            // everything else about the sub-scenario's run shape is the
            // executor's business, not the cell's.
            profile: scenario.execution.profile,
            ..ExecutionConfig::default()
        },
    }
}

/// Runs `scenario` through the sharded executor and returns the same
/// [`NetRunResult`] the unsharded engine produces — byte-identical at any
/// [`crate::scenario::ExecutionConfig::shards`] value.
pub(crate) fn execute(
    scenario: &Scenario,
    seed: u64,
    record_trace: bool,
) -> Result<NetRunResult, NetError> {
    scenario.validate()?;
    let mut profiler = scenario
        .execution
        .profile
        .then(|| Profiler::wall(scenario.execution.build_ns));
    let epoch_ns = Time::from_secs(scenario.execution.epoch_s)
        .as_nanos()
        .max(1);
    let part_tok = profiler.as_mut().map(|p| p.begin("partition"));
    let cells = partition(scenario);
    if let (Some(p), Some(tok)) = (profiler.as_mut(), part_tok) {
        p.end(tok);
    }
    if cells.len() <= 1 {
        // One cell: run the *original* scenario (original entity ids keep
        // the RNG streams, and therefore the digest, byte-identical to
        // the legacy unsharded engine) in epoch-sized chunks.
        let mut core = EngineCore::new(scenario, seed, record_trace)?;
        let mut limit = epoch_ns;
        while !core.is_done() {
            core.run_until(Time(limit));
            limit = limit.saturating_add(epoch_ns);
        }
        let mut result = core.finish();
        if let Some(mut p) = profiler {
            if let Some(cell) = result.prof.take() {
                p.absorb(cell);
            }
            result.prof = Some(p.finish(&scenario.name));
        }
        return Ok(result);
    }

    let subs: Vec<Scenario> = cells
        .iter()
        .map(|cell| sub_scenario(scenario, cell))
        .collect();
    let mut cores = Vec::with_capacity(subs.len());
    for (i, sub) in subs.iter().enumerate() {
        let mut core = EngineCore::new(sub, seed, record_trace)?;
        core.enable_boundary_exchange();
        core.set_prof_track(i as u32);
        cores.push(core);
    }

    let shards = scenario.execution.shards;
    let progress_every_ns = scenario
        .telemetry
        .progress_every_s
        .map(|s| Time::from_secs(s).as_nanos().max(1));
    let live = scenario.telemetry.live_progress;
    let mut progress_lines = Vec::new();
    let mut next_progress = progress_every_ns.unwrap_or(u64::MAX);

    // The deterministic shard-load ledger ([`ShardLoad`]), recorded on
    // every multi-cell run regardless of profiling: event counts derive
    // from the event loop alone, so the metrics report stays byte-
    // identical with profiling on or off.
    let mut prev_events: Vec<u64> = vec![0; cores.len()];
    let mut epoch_events: Vec<Vec<u64>> = Vec::new();
    let mut ghost_windows: Vec<u64> = vec![0; cores.len()];

    let mut boundary = epoch_ns;
    while cores.iter().any(|core| !core.is_done()) {
        let limit = Time(boundary);
        // The parallel step: each worker group advances its contiguous
        // chunk of cells to the epoch boundary. Group count cannot change
        // state, only wall-clock.
        rayon::det::for_each_mut_ordered(shards, &mut cores, |_, core| core.run_until(limit));

        let mut row = Vec::with_capacity(cores.len());
        for (i, core) in cores.iter().enumerate() {
            let events = core.events_so_far();
            row.push(events.saturating_sub(prev_events[i]));
            prev_events[i] = events;
        }
        epoch_events.push(row);

        // The exchange: drain every cell's banded airtime, then inject
        // each cell's *foreign* total as hidden ghost windows opening at
        // the boundary, clamped to one epoch. Cell order and the
        // canonical band order make the merge deterministic.
        let exch_tok = profiler.as_mut().map(|p| p.begin("exchange"));
        let drained: Vec<Vec<(Band, f64)>> =
            cores.iter_mut().map(|core| core.drain_boundary()).collect();
        for (i, core) in cores.iter_mut().enumerate() {
            if core.is_done() {
                continue;
            }
            let mut foreign: Vec<(Band, f64)> = Vec::new();
            for rows in drained
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, rows)| rows)
            {
                for &(band, airtime_s) in rows {
                    match foreign.binary_search_by(|(b, _)| band_order(b, &band)) {
                        Ok(k) => foreign[k].1 += airtime_s,
                        Err(k) => foreign.insert(k, (band, airtime_s)),
                    }
                }
            }
            for (band, airtime_s) in foreign {
                if airtime_s <= 0.0 {
                    continue;
                }
                let window = Time::from_secs(airtime_s).as_nanos().clamp(1, epoch_ns);
                core.inject_ghost(limit, band, Time(boundary.saturating_add(window)));
                ghost_windows[i] += 1;
            }
        }
        if let (Some(p), Some(tok)) = (profiler.as_mut(), exch_tok) {
            p.end(tok);
        }

        while boundary >= next_progress {
            let events: u64 = prev_events.iter().sum();
            let epoch = epoch_events.len().saturating_sub(1);
            let ev_epoch: u64 = epoch_events.last().map(|row| row.iter().sum()).unwrap_or(0);
            let active = cores.iter().filter(|core| !core.is_done()).count();
            let line = format!(
                "[{:>12}] sharded progress: epoch {}  {} events  {} ev/epoch  {}/{} cells active",
                next_progress,
                epoch,
                events,
                ev_epoch,
                active,
                cores.len()
            );
            if live {
                eprintln!("{line}");
            }
            progress_lines.push(line);
            next_progress = next_progress.saturating_add(progress_every_ns.unwrap_or(u64::MAX));
        }
        boundary = boundary.saturating_add(epoch_ns);
    }

    let mut results: Vec<NetRunResult> = cores.into_iter().map(EngineCore::finish).collect();
    if let Some(p) = profiler.as_mut() {
        for result in &mut results {
            if let Some(cell) = result.prof.take() {
                p.absorb(cell);
            }
        }
    }
    let load = ShardLoad {
        cell_events: prev_events,
        epoch_events,
        ghost_windows,
    };
    let merge_tok = profiler.as_mut().map(|p| p.begin("merge_finalize"));
    let mut merged = merge_results(
        scenario,
        &cells,
        results,
        record_trace,
        progress_lines,
        Some(load),
    );
    if let (Some(p), Some(tok)) = (profiler.as_mut(), merge_tok) {
        p.end(tok);
    }
    merged.prof = profiler.map(|p| p.finish(&scenario.name));
    Ok(merged)
}

fn merge_results(
    scenario: &Scenario,
    cells: &[Cell],
    mut results: Vec<NetRunResult>,
    record_trace: bool,
    progress: Vec<String>,
    load: Option<ShardLoad>,
) -> NetRunResult {
    // Trace: prefix each cell's lines with its cell id and interleave by
    // (time, cell, emission order) — a stable sort on an already
    // per-cell-ordered sequence, so the merge is total and deterministic.
    let mut records: Vec<(u64, usize, TraceRecord)> = Vec::new();
    for (cell, result) in results.iter_mut().enumerate() {
        for record in std::mem::take(&mut result.trace).into_records() {
            let what = format!("c{cell}| {}", record.what);
            records.push((
                record.at.as_nanos(),
                cell,
                TraceRecord {
                    at: record.at,
                    what,
                },
            ));
        }
    }
    records.sort_by_key(|&(at, cell, _)| (at, cell));
    let trace = EventTrace::from_records(
        records.into_iter().map(|(_, _, record)| record).collect(),
        record_trace,
    );

    let streaming = scenario.telemetry.mode == MetricsMode::Streaming;
    let mut metrics = NetworkMetrics::new(
        scenario.tags.len(),
        scenario.receivers.len(),
        scenario.duration_s,
    );
    if streaming {
        metrics.enable_streaming();
    }
    let n_real_sources = scenario.coex.as_ref().map(|c| c.sources.len());
    if let Some(n) = n_real_sources {
        metrics.init_coex(scenario.carriers.len(), n);
    }

    let mut telemetry = TelemetryReport {
        events: 0,
        subscriptions: Vec::new(),
        progress,
    };

    for (i, (cell, result)) in cells.iter().zip(results.iter_mut()).enumerate() {
        let m = &mut result.metrics;
        for (local, &t) in cell.tags.iter().enumerate() {
            metrics.tags[t] = m.tags[local];
        }
        for (local, &s) in cell.receivers.iter().enumerate() {
            metrics.mirror_airtime_s[s] += m.mirror_airtime_s[local];
        }
        for &sample in m.latency_ms.samples() {
            metrics.latency_ms.push(sample);
        }
        for &sample in m.transaction_latency_ms.samples() {
            metrics.transaction_latency_ms.push(sample);
        }
        for &sample in m.poll_latency_ms.samples() {
            metrics.poll_latency_ms.push(sample);
        }
        if n_real_sources.is_some() {
            // Occupancy series exist per cell regardless (every sub-
            // scenario carries a coex config for the ghost); keep them
            // only when the user's scenario actually asked for coex.
            for (local, &c) in cell.carriers.iter().enumerate() {
                metrics.occupancy_series[c] = std::mem::take(&mut m.occupancy_series[local]);
            }
        }
        if let (Some(global), Some(local)) = (&mut metrics.streaming, &m.streaming) {
            global.merge(local);
            if let Some(bins) = &local.displacement_bins {
                global
                    .displacement_bins
                    .get_or_insert_with(|| RateBins::new(DISPLACEMENT_BIN_M))
                    .merge(bins);
            }
            if let Some(bins) = &local.occupancy_bins {
                global
                    .occupancy_bins
                    .get_or_insert_with(|| RateBins::new(OCCUPANCY_BIN))
                    .merge(bins);
            }
            for (l, &c) in cell.carriers.iter().enumerate() {
                if let (Some(dst), Some(&src)) = (
                    global.peak_occupancy.get_mut(c),
                    local.peak_occupancy.get(l),
                ) {
                    *dst = src;
                }
            }
        }

        telemetry.events += result.telemetry.events;
        if i == 0 {
            telemetry.subscriptions = std::mem::take(&mut result.telemetry.subscriptions);
        } else {
            for (merged, sub) in telemetry
                .subscriptions
                .iter_mut()
                .zip(&result.telemetry.subscriptions)
            {
                merge_sink(&mut merged.report, &sub.report);
            }
        }
    }

    // External-source counters are reported from cell 0's perspective
    // (every cell replicates the same emission processes; CSMA defers
    // depend on the local medium, so cell 0 is the canonical observer),
    // truncated to the user's real sources — the appended ghost proxy
    // never emits on its own and is not part of the user's config.
    if let Some(n) = n_real_sources {
        let first = &results[0].metrics;
        metrics.coex_emissions = first.coex_emissions.iter().take(n).copied().collect();
        metrics.coex_airtime_s = first.coex_airtime_s.iter().take(n).copied().collect();
        metrics.coex_defers = first.coex_defers.iter().take(n).copied().collect();
    }

    metrics.shard_load = load;
    NetRunResult {
        metrics,
        trace,
        telemetry,
        prof: None,
    }
}

/// Merges one cell's sink result into the running aggregate. Quantile
/// sketches and counters merge exactly; the windowed rings are trailing-
/// window views that cannot be reconstructed across cells, so their
/// scalars combine pessimistically (worst PRR, peak occupancy) — the
/// documented lossy corner of the multi-cell merge.
fn merge_sink(into: &mut SinkReport, from: &SinkReport) {
    match (into, from) {
        (SinkReport::Quantiles { sketch, .. }, SinkReport::Quantiles { sketch: other, .. }) => {
            sketch.merge(other);
        }
        (
            SinkReport::WindowedPrr { last, worst },
            SinkReport::WindowedPrr {
                last: other_last,
                worst: other_worst,
            },
        ) => {
            *last = fold_opt(*last, *other_last, f64::min);
            *worst = fold_opt(*worst, *other_worst, f64::min);
        }
        (
            SinkReport::WindowedOccupancy { last, peak },
            SinkReport::WindowedOccupancy {
                last: other_last,
                peak: other_peak,
            },
        ) => {
            *last = fold_opt(*last, *other_last, f64::max);
            *peak = peak.max(*other_peak);
        }
        (SinkReport::Counters { counts }, SinkReport::Counters { counts: other }) => {
            for (count, more) in counts.iter_mut().zip(other) {
                *count += more;
            }
        }
        // A subscription's sink kind is fixed by its spec; mismatched
        // variants cannot occur between cells of one run.
        _ => {}
    }
}

fn fold_opt(a: Option<f64>, b: Option<f64>, f: impl Fn(f64, f64) -> f64) -> Option<f64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        (a, None) => a,
        (None, b) => b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NetworkSim;

    #[test]
    fn bedside_presets_are_single_cell() {
        for scenario in [
            Scenario::hospital_ward(12),
            Scenario::hospital_ward(12).closed_loop(),
            Scenario::contact_lens_fleet(8),
            Scenario::card_to_card_room(6),
        ] {
            assert_eq!(partition(&scenario).len(), 1, "{}", scenario.name);
        }
        // Sub-band striping gives each AP its own carrier–tag component,
        // so the congested ward genuinely splits.
        assert!(partition(&Scenario::congested_ward(12)).len() > 1);
    }

    #[test]
    fn mobility_and_restripe_fold_to_one_cell() {
        use crate::coex::ReStripe;
        let walking = Scenario::walking_ward(12);
        assert_eq!(partition(&walking).len(), 1);
        let adaptive = Scenario::congested_ward(12).with_restripe(ReStripe::default());
        assert_eq!(partition(&adaptive).len(), 1);
    }

    #[test]
    fn campus_partitions_into_disjoint_covering_cells() {
        let quad = Scenario::campus(2_048);
        let cells = partition(&quad);
        assert!(cells.len() > 1, "campus should split: got {}", cells.len());
        let mut tags = vec![false; quad.tags.len()];
        let mut carriers = vec![false; quad.carriers.len()];
        let mut receivers = vec![false; quad.receivers.len()];
        for cell in &cells {
            assert!(!cell.carriers.is_empty() && !cell.tags.is_empty());
            assert!(!cell.receivers.is_empty());
            for &t in &cell.tags {
                assert!(!tags[t], "tag {t} in two cells");
                tags[t] = true;
            }
            for &c in &cell.carriers {
                assert!(!carriers[c], "carrier {c} in two cells");
                carriers[c] = true;
            }
            for &s in &cell.receivers {
                assert!(!receivers[s], "receiver {s} in two cells");
                receivers[s] = true;
            }
            // Ascending member lists keep local order mirroring global.
            assert!(cell.tags.windows(2).all(|w| w[0] < w[1]));
            assert!(cell.carriers.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(tags.iter().all(|&x| x), "every tag covered");
        assert!(carriers.iter().all(|&x| x), "every carrier covered");
        assert!(receivers.iter().all(|&x| x), "every receiver covered");
    }

    #[test]
    fn partition_ignores_shard_count() {
        let mut quad = Scenario::campus(1_024);
        let reference = partition(&quad);
        for shards in [2usize, 4, 8] {
            quad.execution.shards = shards;
            assert_eq!(partition(&quad), reference);
        }
    }

    #[test]
    fn single_cell_execution_matches_legacy_engine_bytes() {
        // The single-cell path must reproduce NetworkSim::run exactly —
        // same trace bytes, same metrics — at any shard count and any
        // epoch length.
        for scenario in [
            Scenario::hospital_ward(8),
            Scenario::hospital_ward(8).closed_loop(),
            Scenario::card_to_card_room(6),
        ] {
            let legacy = NetworkSim::new(&scenario, 42).run().unwrap();
            for shards in [1usize, 4] {
                let mut sharded = scenario.clone();
                sharded.execution.shards = shards;
                let run = execute(&sharded, 42, true).unwrap();
                assert_eq!(
                    run.trace.to_bytes(),
                    legacy.trace.to_bytes(),
                    "{} at {shards} shards",
                    scenario.name
                );
                assert_eq!(
                    format!("{:?}", run.metrics),
                    format!("{:?}", legacy.metrics)
                );
            }
        }
    }

    #[test]
    fn multi_cell_digest_is_shard_count_invariant() {
        let quad = Scenario::campus(1_024);
        assert!(partition(&quad).len() > 1);
        let reference = execute(&quad, 42, true).unwrap();
        assert!(!reference.trace.to_bytes().is_empty());
        for shards in [2usize, 4, 8] {
            let mut scenario = quad.clone();
            scenario.execution.shards = shards;
            let run = execute(&scenario, 42, true).unwrap();
            assert_eq!(
                run.trace.digest(),
                reference.trace.digest(),
                "campus digest diverged at {shards} shards"
            );
            assert_eq!(
                format!("{:?}", run.metrics),
                format!("{:?}", reference.metrics)
            );
            assert_eq!(run.telemetry, reference.telemetry);
        }
    }

    #[test]
    fn multi_cell_trace_lines_carry_cell_prefixes() {
        let quad = Scenario::campus(1_024);
        let run = execute(&quad, 7, true).unwrap();
        let records = run.trace.records();
        assert!(!records.is_empty());
        assert!(records
            .iter()
            .all(|r| { r.what.starts_with('c') && r.what.as_bytes().contains(&b'|') }));
        // Interleaved by (time, cell): timestamps never decrease.
        assert!(records.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn ghost_exchange_reaches_other_cells() {
        // Cross-cell interference must actually arrive: some ghost
        // windows are injected in a multi-cell campus run (visible as
        // ghost trace lines).
        let quad = Scenario::campus(1_024);
        let run = execute(&quad, 42, true).unwrap();
        let ghosts = run
            .trace
            .records()
            .iter()
            .filter(|r| r.what.contains("ghost window"))
            .count();
        assert!(ghosts > 0, "no ghost windows exchanged");
    }

    #[test]
    fn sub_scenarios_validate_and_preserve_counts() {
        let quad = Scenario::campus(2_048);
        let cells = partition(&quad);
        for cell in &cells {
            let sub = sub_scenario(&quad, cell);
            sub.validate().unwrap();
            assert_eq!(sub.tags.len(), cell.tags.len());
            assert_eq!(sub.carriers.len(), cell.carriers.len());
            assert_eq!(sub.receivers.len(), cell.receivers.len());
            // Ghost appended last, real sources keep their indices.
            let coex = sub.coex.as_ref().unwrap();
            assert!(matches!(
                coex.sources.last().unwrap().model,
                CoexModel::Ghost(_)
            ));
            assert_eq!(
                coex.sources.len(),
                quad.coex.as_ref().unwrap().sources.len() + 1
            );
        }
    }
}
