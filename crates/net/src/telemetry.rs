//! Streaming telemetry: Iris-style subscriptions over the engine's event
//! stream, feeding **online sketches** instead of stored samples.
//!
//! The legacy metrics pipeline accumulates one `Vec` entry per sample
//! (latency CDFs, per-tag mobility series, per-carrier occupancy series),
//! which caps run length and fleet size exactly when soak runs need hours
//! of simulated time under bounded memory. This module replaces that with
//! three pieces:
//!
//! * **[`Subscription`]** — a [`Filter`] predicate (per-tag set,
//!   per-carrier set, per-event-kind, time window) paired with a
//!   [`SinkSpec`]. Filters are compiled once per run into a per-event-kind
//!   dispatch mask, so the engine's hot path pays **one branch per emit
//!   site when nothing is subscribed** (the mask test) and only walks
//!   subscriptions whose mask bit matches.
//! * **Online sketches** — [`LatencySketch`] (a log-bucketed histogram
//!   with ≤ [`SKETCH_GAMMA`]·½ relative error per bucket, mergeable across
//!   shards and Monte-Carlo trials), [`P2Quantile`] (the classic P²
//!   streaming quantile estimator, O(1) memory), [`RateRing`] (a windowed
//!   PRR/occupancy ring) and plain monotonic counters.
//! * **Progress** — a periodic one-line run status (sim-time, events
//!   processed, events per simulated second, live PRR, re-stripe count,
//!   live p99 poll latency from a P² estimator) for soak runs, collected
//!   deterministically and optionally mirrored to stderr as the run goes.
//!
//! Subscriptions never touch the RNG streams, the queue or the medium, so
//! attaching any number of them leaves the event trace **byte-identical**
//! (pinned by the `telemetry` integration tests).
//!
//! The same machinery backs [`MetricsMode::Streaming`]: the engine routes
//! every sample that the legacy mode would store into a sketch or a fixed
//! set of bins, so [`crate::metrics::NetworkMetrics`] stays O(tags +
//! subscriptions) instead of O(events). The legacy stored-sample mode
//! remains the default and reproduces its reports byte for byte.

use crate::time::Time;
use std::collections::BTreeMap;

/// Relative bucket width of [`LatencySketch`]: quantiles come back within
/// ±γ/2 ≈ 0.25 % of the exact stored-sample value (well inside the 1 %
/// acceptance bound the telemetry tests pin on `congested_ward`).
pub const SKETCH_GAMMA: f64 = 0.005;

/// What a telemetry event describes. Each kind owns one bit of the
/// dispatch mask; [`TelemetryKind::COUNT`] kinds exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum TelemetryKind {
    /// A tag's application offered a packet.
    Offered = 0,
    /// A packet was dropped (queue overflow or retry budget exhausted).
    Dropped = 1,
    /// A carrier granted its slot to a tag.
    Grant = 2,
    /// An uplink transmission attempt completed (any outcome).
    Attempt = 3,
    /// An uplink packet was delivered end to end.
    Delivery = 4,
    /// An uplink attempt was lost (collision, external traffic or link
    /// budget).
    Loss = 5,
    /// A closed-loop poll → response → ack transaction completed.
    Transaction = 6,
    /// A carrier re-tuned itself (and its tags) to another sub-band.
    Restripe = 7,
    /// A carrier recorded an occupancy sample on its own stripe.
    Occupancy = 8,
}

impl TelemetryKind {
    /// Number of event kinds (= dispatch-mask width in bits).
    pub const COUNT: usize = 9;

    /// All kinds, in bit order.
    pub const ALL: [TelemetryKind; TelemetryKind::COUNT] = [
        TelemetryKind::Offered,
        TelemetryKind::Dropped,
        TelemetryKind::Grant,
        TelemetryKind::Attempt,
        TelemetryKind::Delivery,
        TelemetryKind::Loss,
        TelemetryKind::Transaction,
        TelemetryKind::Restripe,
        TelemetryKind::Occupancy,
    ];

    /// This kind's bit in a dispatch mask.
    #[inline]
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Human-readable label (counter reports and docs).
    pub fn label(self) -> &'static str {
        match self {
            TelemetryKind::Offered => "offered",
            TelemetryKind::Dropped => "dropped",
            TelemetryKind::Grant => "grant",
            TelemetryKind::Attempt => "attempt",
            TelemetryKind::Delivery => "delivery",
            TelemetryKind::Loss => "loss",
            TelemetryKind::Transaction => "transaction",
            TelemetryKind::Restripe => "restripe",
            TelemetryKind::Occupancy => "occupancy",
        }
    }
}

/// Why an uplink attempt was lost (the [`TelemetryKind::Loss`] payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Lost to the fleet's own contention (capture failed).
    Collision,
    /// Lost to external coexistence traffic.
    External,
    /// Lost to the link budget (shadowed RSSI under sensitivity).
    LinkBudget,
}

/// One observation the engine emits into the subscription layer. Events
/// are tiny `Copy` values; the engine only constructs one after the
/// dispatch mask says somebody is listening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryEvent {
    /// A packet arrival ([`TelemetryKind::Offered`]).
    Offered {
        /// The offering tag.
        tag: usize,
    },
    /// A packet drop ([`TelemetryKind::Dropped`]).
    Dropped {
        /// The dropping tag.
        tag: usize,
    },
    /// A granted carrier slot ([`TelemetryKind::Grant`]).
    Grant {
        /// The granted tag.
        tag: usize,
        /// The granting carrier.
        carrier: usize,
        /// How long the head packet waited in queue, nanoseconds.
        waited_ns: u64,
    },
    /// A completed uplink attempt ([`TelemetryKind::Attempt`]).
    Attempt {
        /// The transmitting tag.
        tag: usize,
    },
    /// An end-to-end delivery ([`TelemetryKind::Delivery`]).
    Delivery {
        /// The delivering tag.
        tag: usize,
        /// Arrival → delivery latency, nanoseconds.
        latency_ns: u64,
        /// Application bits delivered.
        bits: usize,
    },
    /// A lost uplink attempt ([`TelemetryKind::Loss`]).
    Loss {
        /// The losing tag.
        tag: usize,
        /// What ate the attempt.
        loss: LossKind,
    },
    /// A completed closed-loop transaction ([`TelemetryKind::Transaction`]).
    Transaction {
        /// The tag whose transaction completed.
        tag: usize,
        /// Poll start → ack decode span, nanoseconds.
        span_ns: u64,
    },
    /// An adaptive re-stripe ([`TelemetryKind::Restripe`]).
    Restripe {
        /// The re-tuning carrier.
        carrier: usize,
        /// The stripe it left.
        from_subband: usize,
        /// The stripe it re-tuned to.
        to_subband: usize,
    },
    /// An occupancy sample ([`TelemetryKind::Occupancy`]).
    Occupancy {
        /// The sensing carrier.
        carrier: usize,
        /// Its current stripe.
        subband: usize,
        /// Its EWMA busy estimate on its own channel, in [0, 1].
        occupancy: f64,
    },
}

impl TelemetryEvent {
    /// The event's kind (its dispatch-mask bit).
    pub fn kind(&self) -> TelemetryKind {
        match self {
            TelemetryEvent::Offered { .. } => TelemetryKind::Offered,
            TelemetryEvent::Dropped { .. } => TelemetryKind::Dropped,
            TelemetryEvent::Grant { .. } => TelemetryKind::Grant,
            TelemetryEvent::Attempt { .. } => TelemetryKind::Attempt,
            TelemetryEvent::Delivery { .. } => TelemetryKind::Delivery,
            TelemetryEvent::Loss { .. } => TelemetryKind::Loss,
            TelemetryEvent::Transaction { .. } => TelemetryKind::Transaction,
            TelemetryEvent::Restripe { .. } => TelemetryKind::Restripe,
            TelemetryEvent::Occupancy { .. } => TelemetryKind::Occupancy,
        }
    }

    /// The tag the event concerns, if any.
    pub fn tag(&self) -> Option<usize> {
        match *self {
            TelemetryEvent::Offered { tag }
            | TelemetryEvent::Dropped { tag }
            | TelemetryEvent::Grant { tag, .. }
            | TelemetryEvent::Attempt { tag }
            | TelemetryEvent::Delivery { tag, .. }
            | TelemetryEvent::Loss { tag, .. }
            | TelemetryEvent::Transaction { tag, .. } => Some(tag),
            TelemetryEvent::Restripe { .. } | TelemetryEvent::Occupancy { .. } => None,
        }
    }

    /// The carrier the event concerns, if any.
    pub fn carrier(&self) -> Option<usize> {
        match *self {
            TelemetryEvent::Grant { carrier, .. }
            | TelemetryEvent::Restripe { carrier, .. }
            | TelemetryEvent::Occupancy { carrier, .. } => Some(carrier),
            _ => None,
        }
    }
}

/// A subscription's predicate over the event stream. Every axis is
/// optional; an empty filter matches everything the sink consumes.
/// Entity axes only constrain events that carry that entity (an
/// [`TelemetryEvent::Occupancy`] sample has no tag, so a tag filter
/// ignores it rather than rejecting it).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Filter {
    /// Restrict to these tag indices (`None` = all tags).
    pub tags: Option<Vec<usize>>,
    /// Restrict to these carrier indices (`None` = all carriers).
    pub carriers: Option<Vec<usize>>,
    /// Restrict to these event kinds (`None` = every kind the sink
    /// consumes).
    pub kinds: Option<Vec<TelemetryKind>>,
    /// Restrict to events in `[start_s, end_s)` of simulated time.
    pub window_s: Option<(f64, f64)>,
}

impl Filter {
    /// The match-everything filter.
    pub fn all() -> Filter {
        Filter::default()
    }

    /// Restricts the filter to the given tags.
    pub fn tags(mut self, tags: impl IntoIterator<Item = usize>) -> Filter {
        self.tags = Some(tags.into_iter().collect());
        self
    }

    /// Restricts the filter to the given carriers.
    pub fn carriers(mut self, carriers: impl IntoIterator<Item = usize>) -> Filter {
        self.carriers = Some(carriers.into_iter().collect());
        self
    }

    /// Restricts the filter to the given event kinds.
    pub fn kinds(mut self, kinds: impl IntoIterator<Item = TelemetryKind>) -> Filter {
        self.kinds = Some(kinds.into_iter().collect());
        self
    }

    /// Restricts the filter to `[start_s, end_s)` of simulated time.
    pub fn window(mut self, start_s: f64, end_s: f64) -> Filter {
        self.window_s = Some((start_s, end_s));
        self
    }

    /// Validates the filter against the scenario's entity counts.
    pub fn validate(&self, n_tags: usize, n_carriers: usize) -> Result<(), String> {
        if let Some(tags) = &self.tags {
            if let Some(&bad) = tags.iter().find(|&&t| t >= n_tags) {
                return Err(format!("tag index {bad} out of range ({n_tags} tags)"));
            }
        }
        if let Some(carriers) = &self.carriers {
            if let Some(&bad) = carriers.iter().find(|&&c| c >= n_carriers) {
                return Err(format!(
                    "carrier index {bad} out of range ({n_carriers} carriers)"
                ));
            }
        }
        if let Some((start, end)) = self.window_s {
            if !(start >= 0.0 && end > start) {
                return Err(format!("window [{start}, {end}) is not a forward interval"));
            }
        }
        Ok(())
    }

    /// The kind mask this filter admits (before intersecting with the
    /// sink's own interest mask).
    fn kind_mask(&self) -> u32 {
        match &self.kinds {
            None => (1 << TelemetryKind::COUNT) - 1,
            Some(kinds) => kinds.iter().fold(0, |m, k| m | k.bit()),
        }
    }
}

/// Which sample stream a [`SinkSpec::Quantiles`] sketch tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Arrival → delivery latency, milliseconds
    /// ([`TelemetryEvent::Delivery`]).
    DeliveryLatencyMs,
    /// Poll start → ack decode span, milliseconds
    /// ([`TelemetryEvent::Transaction`]).
    TransactionLatencyMs,
    /// Head-of-queue wait before a grant, milliseconds
    /// ([`TelemetryEvent::Grant`]).
    PollLatencyMs,
}

impl Dataset {
    /// The event kind feeding this dataset.
    pub fn source_kind(self) -> TelemetryKind {
        match self {
            Dataset::DeliveryLatencyMs => TelemetryKind::Delivery,
            Dataset::TransactionLatencyMs => TelemetryKind::Transaction,
            Dataset::PollLatencyMs => TelemetryKind::Grant,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Dataset::DeliveryLatencyMs => "delivery latency",
            Dataset::TransactionLatencyMs => "transaction latency",
            Dataset::PollLatencyMs => "poll latency",
        }
    }
}

/// What a subscription does with its matched events.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkSpec {
    /// Stream one [`Dataset`] into a [`LatencySketch`]: online quantiles
    /// in O(log-buckets) memory, mergeable across trials and shards.
    Quantiles(Dataset),
    /// A windowed PRR ring over [`TelemetryEvent::Attempt`] /
    /// [`TelemetryEvent::Delivery`]: live packet-reception ratio over the
    /// trailing window, plus the worst window the run ever saw.
    WindowedPrr {
        /// Window length, simulated seconds.
        window_s: f64,
    },
    /// A windowed occupancy ring over [`TelemetryEvent::Occupancy`]:
    /// mean sensed occupancy over the trailing window, plus the peak.
    WindowedOccupancy {
        /// Window length, simulated seconds.
        window_s: f64,
    },
    /// Monotonic per-kind counters of every matched event.
    Counters,
}

impl SinkSpec {
    /// The kinds this sink consumes (intersected with the filter's kinds
    /// into the subscription's dispatch mask).
    fn interest_mask(&self) -> u32 {
        match self {
            SinkSpec::Quantiles(data) => data.source_kind().bit(),
            SinkSpec::WindowedPrr { .. } => {
                TelemetryKind::Attempt.bit() | TelemetryKind::Delivery.bit()
            }
            SinkSpec::WindowedOccupancy { .. } => TelemetryKind::Occupancy.bit(),
            SinkSpec::Counters => (1 << TelemetryKind::COUNT) - 1,
        }
    }

    /// Validates sink parameters.
    fn validate(&self) -> Result<(), String> {
        match self {
            SinkSpec::WindowedPrr { window_s } | SinkSpec::WindowedOccupancy { window_s } => {
                if *window_s <= 0.0 {
                    return Err(format!("window {window_s} s must be positive"));
                }
            }
            SinkSpec::Quantiles(_) | SinkSpec::Counters => {}
        }
        Ok(())
    }
}

/// One registered subscription: a name (for reports), a filter and a sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Report label.
    pub name: String,
    /// Which events reach the sink.
    pub filter: Filter,
    /// What the sink does with them.
    pub sink: SinkSpec,
}

impl Subscription {
    /// Builds a subscription.
    pub fn new(name: impl Into<String>, filter: Filter, sink: SinkSpec) -> Subscription {
        Subscription {
            name: name.into(),
            filter,
            sink,
        }
    }
}

/// Whether [`crate::metrics::NetworkMetrics`] stores every sample (the
/// legacy mode, exact but O(events) memory) or streams samples into
/// sketches and fixed bins (O(tags + subscriptions) memory, quantiles
/// within the [`SKETCH_GAMMA`] bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// Store every sample (default; report paths byte-identical to the
    /// pre-telemetry engine).
    #[default]
    Stored,
    /// Stream samples into sketches/bins; sample `Vec`s stay empty.
    Streaming,
}

/// The scenario-attached telemetry configuration: subscriptions, the
/// metrics mode and the optional soak-run progress cadence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryConfig {
    /// Registered subscriptions (empty = the dispatch mask is 0 and the
    /// engine pays one dead branch per emit site).
    pub subscriptions: Vec<Subscription>,
    /// Emit a one-line progress status every this many simulated seconds
    /// (`None` = no progress output).
    pub progress_every_s: Option<f64>,
    /// Mirror progress lines to stderr as the run executes (the collected
    /// lines are always returned in the report either way).
    pub live_progress: bool,
    /// Stored-sample vs streaming metrics.
    pub mode: MetricsMode,
}

impl TelemetryConfig {
    /// An empty config (no subscriptions, stored metrics, no progress).
    pub fn new() -> TelemetryConfig {
        TelemetryConfig::default()
    }

    /// Adds a subscription.
    pub fn subscribe(mut self, sub: Subscription) -> TelemetryConfig {
        self.subscriptions.push(sub);
        self
    }

    /// Switches the metrics pipeline to streaming sketches.
    pub fn streaming(mut self) -> TelemetryConfig {
        self.mode = MetricsMode::Streaming;
        self
    }

    /// Enables periodic progress lines.
    pub fn with_progress(mut self, every_s: f64) -> TelemetryConfig {
        self.progress_every_s = Some(every_s);
        self
    }

    /// Mirrors progress lines to stderr while the run executes.
    pub fn live(mut self) -> TelemetryConfig {
        self.live_progress = true;
        self
    }

    /// Validates the whole config against the scenario's entity counts.
    pub fn validate(&self, n_tags: usize, n_carriers: usize) -> Result<(), String> {
        for (i, sub) in self.subscriptions.iter().enumerate() {
            sub.filter
                .validate(n_tags, n_carriers)
                .map_err(|e| format!("subscription {i} ({}): {e}", sub.name))?;
            sub.sink
                .validate()
                .map_err(|e| format!("subscription {i} ({}): {e}", sub.name))?;
        }
        if let Some(every) = self.progress_every_s {
            if every <= 0.0 {
                return Err(format!("progress cadence {every} s must be positive"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Online sketches
// ---------------------------------------------------------------------------

/// A mergeable streaming-quantile sketch: log-bucketed counts with
/// relative bucket width [`SKETCH_GAMMA`], so any quantile comes back
/// within ±γ/2 of the exact stored-sample answer regardless of how many
/// samples streamed through. Memory is O(distinct buckets) — about 1.9 k
/// buckets span 1 µs to 10⁵ ms — independent of sample count.
///
/// The quantile definition matches
/// [`interscatter_sim::measurements::Cdf::quantile`] (nearest rank on
/// `round((n−1)·q)`), so stored-vs-streamed comparisons differ only by the
/// bucket width.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencySketch {
    buckets: BTreeMap<i32, u64>,
    /// Samples ≤ 0 (their own bucket: log has no home for them).
    zeros: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LatencySketch {
    /// An empty sketch.
    pub fn new() -> LatencySketch {
        LatencySketch::default()
    }

    /// Streams one sample in.
    pub fn add(&mut self, value: f64) {
        if self.count == 0 {
            (self.min, self.max) = (value, value);
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if value <= 0.0 {
            self.zeros += 1;
        } else {
            let bucket = (value.ln() / (1.0 + SKETCH_GAMMA).ln()).floor() as i32;
            *self.buckets.entry(bucket).or_insert(0) += 1;
        }
    }

    /// Number of samples streamed in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing streamed in yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the streamed samples (exact; `None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest and largest sample (exact; `None` when empty).
    pub fn range(&self) -> Option<(f64, f64)> {
        (self.count > 0).then_some((self.min, self.max))
    }

    /// The `q`-quantile, within ±[`SKETCH_GAMMA`]/2 relative error
    /// (`None` when empty). Nearest-rank on `round((n−1)·q)`, like the
    /// stored-sample `Cdf`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        if rank < self.zeros {
            return Some(self.min.min(0.0));
        }
        let mut seen = self.zeros;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen > rank {
                // Geometric bucket midpoint, clamped to the exact range.
                let mid = (1.0 + SKETCH_GAMMA).powi(bucket) * (1.0 + SKETCH_GAMMA).sqrt();
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The median (`quantile(0.5)`).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Merges another sketch in (the shard/trial pooling path: merging is
    /// exact — bucket counts add — so merge order cannot change any
    /// quantile).
    pub fn merge(&mut self, other: &LatencySketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            (self.min, self.max) = (other.min, other.max);
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.zeros += other.zeros;
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
    }
}

/// The classic P² streaming quantile estimator (Jain & Chlamtac 1985):
/// five markers track one quantile in O(1) memory and O(1) time per
/// sample. Used for *live* tail tracking (the progress line's p99 poll
/// latency); the mergeable [`LatencySketch`] is the reporting path.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (the first `seen` entries are raw samples until
    /// five arrive).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per sample.
    increments: [f64; 5],
    seen: usize,
}

impl P2Quantile {
    /// An estimator for the `q`-quantile.
    pub fn new(q: f64) -> P2Quantile {
        let q = q.clamp(0.0, 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            seen: 0,
        }
    }

    /// Streams one sample in.
    pub fn add(&mut self, value: f64) {
        if self.seen < 5 {
            self.heights[self.seen] = value;
            self.seen += 1;
            if self.seen == 5 {
                // total_cmp: identical order for the finite samples the
                // sketches feed in, but a consistent comparator under NaN.
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        // Find the cell the sample falls into and bump marker positions.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            (1..5)
                .find(|&i| value < self.heights[i])
                .map(|i| i - 1)
                .unwrap_or(3)
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let below = self.positions[i] - self.positions[i - 1];
            let above = self.positions[i + 1] - self.positions[i];
            if (d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0) {
                let sign = d.signum();
                let parabolic = self.parabolic(i, sign);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, sign)
                    };
                self.positions[i] += sign;
            }
        }
        self.seen += 1;
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let (p, h) = (&self.positions, &self.heights);
        h[i] + sign / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + sign) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - sign) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate (`None` before any sample; exact while fewer
    /// than five samples arrived).
    pub fn estimate(&self) -> Option<f64> {
        match self.seen {
            0 => None,
            n @ 1..=4 => {
                let mut head: Vec<f64> = self.heights[..n].to_vec();
                head.sort_by(f64::total_cmp);
                let idx = ((n - 1) as f64 * self.q).round() as usize;
                Some(head[idx])
            }
            _ => Some(self.heights[2]),
        }
    }

    /// Samples streamed in.
    pub fn count(&self) -> usize {
        self.seen
    }
}

/// A windowed rate ring: the trailing window is split into
/// [`RateRing::SLOTS`] sub-windows of equal simulated time, each holding
/// an (attempts, delivered) pair — O(1) memory however long the run.
/// Advancing is driven by event timestamps, so it is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct RateRing {
    slot_ns: u64,
    slots: Vec<(u64, u64)>,
    /// Index of the slot `cursor_start` opens.
    cursor: usize,
    /// Start time of the cursor slot.
    cursor_start: u64,
    /// Worst full-window PRR observed at any slot rollover.
    worst: Option<f64>,
}

impl RateRing {
    /// Sub-windows per ring.
    pub const SLOTS: usize = 16;

    /// A ring covering `window_s` trailing simulated seconds.
    pub fn new(window_s: f64) -> RateRing {
        let slot_ns = (Time::from_secs(window_s).as_nanos() / Self::SLOTS as u64).max(1);
        RateRing {
            slot_ns,
            slots: vec![(0, 0); Self::SLOTS],
            cursor: 0,
            cursor_start: 0,
            worst: None,
        }
    }

    /// Rolls the cursor forward to cover `at`, retiring expired slots.
    fn roll(&mut self, at: Time) {
        let now = at.as_nanos();
        while now >= self.cursor_start + self.slot_ns {
            // A full window just closed behind the cursor: remember the
            // worst PRR any window position ever showed.
            if let Some(prr) = self.rate() {
                self.worst = Some(self.worst.map_or(prr, |w| w.min(prr)));
            }
            self.cursor = (self.cursor + 1) % Self::SLOTS;
            self.cursor_start += self.slot_ns;
            self.slots[self.cursor] = (0, 0);
        }
    }

    /// Records `attempts` attempts at `at`.
    pub fn attempt(&mut self, at: Time) {
        self.roll(at);
        self.slots[self.cursor].0 += 1;
    }

    /// Records a delivery at `at`.
    pub fn delivered(&mut self, at: Time) {
        self.roll(at);
        self.slots[self.cursor].1 += 1;
    }

    /// Records an arbitrary numerator/denominator pair at `at` (the
    /// occupancy ring records occupancy‰ over samples this way).
    pub fn record(&mut self, at: Time, num: u64, den: u64) {
        self.roll(at);
        self.slots[self.cursor].0 += den;
        self.slots[self.cursor].1 += num;
    }

    /// The rate over the trailing window (`None` while the window is
    /// empty): delivered / attempts for the PRR ring.
    pub fn rate(&self) -> Option<f64> {
        let (attempts, delivered) = self
            .slots
            .iter()
            .fold((0u64, 0u64), |(a, d), &(sa, sd)| (a + sa, d + sd));
        (attempts > 0).then(|| delivered as f64 / attempts as f64)
    }

    /// The worst windowed rate seen at any slot rollover (`None` until a
    /// window has both filled and rolled).
    pub fn worst(&self) -> Option<f64> {
        self.worst
    }
}

// ---------------------------------------------------------------------------
// Runtime: compiled filters + sink state
// ---------------------------------------------------------------------------

/// A filter compiled against one scenario: index sets become bit vectors,
/// window bounds become integer nanoseconds, and the kind axis is folded
/// into the subscription's dispatch mask.
#[derive(Debug, Clone)]
struct CompiledFilter {
    tags: Option<Vec<bool>>,
    carriers: Option<Vec<bool>>,
    window: Option<(Time, Time)>,
}

impl CompiledFilter {
    fn compile(filter: &Filter, n_tags: usize, n_carriers: usize) -> CompiledFilter {
        let to_mask = |indices: &Vec<usize>, n: usize| {
            let mut mask = vec![false; n];
            for &i in indices {
                if i < n {
                    mask[i] = true;
                }
            }
            mask
        };
        CompiledFilter {
            tags: filter.tags.as_ref().map(|t| to_mask(t, n_tags)),
            carriers: filter.carriers.as_ref().map(|c| to_mask(c, n_carriers)),
            window: filter
                .window_s
                .map(|(s, e)| (Time::from_secs(s), Time::from_secs(e))),
        }
    }

    #[inline]
    fn matches(&self, at: Time, event: &TelemetryEvent) -> bool {
        if let Some((start, end)) = self.window {
            if at < start || at >= end {
                return false;
            }
        }
        if let Some(tags) = &self.tags {
            if let Some(tag) = event.tag() {
                if !tags.get(tag).copied().unwrap_or(false) {
                    return false;
                }
            }
        }
        if let Some(carriers) = &self.carriers {
            if let Some(carrier) = event.carrier() {
                if !carriers.get(carrier).copied().unwrap_or(false) {
                    return false;
                }
            }
        }
        true
    }
}

/// One subscription's live state.
#[derive(Debug, Clone)]
enum SinkState {
    Quantiles {
        data: Dataset,
        sketch: LatencySketch,
    },
    WindowedPrr {
        ring: RateRing,
    },
    WindowedOccupancy {
        ring: RateRing,
        peak: f64,
    },
    Counters {
        counts: [u64; TelemetryKind::COUNT],
    },
}

impl SinkState {
    fn build(spec: &SinkSpec) -> SinkState {
        match spec {
            SinkSpec::Quantiles(data) => SinkState::Quantiles {
                data: *data,
                sketch: LatencySketch::new(),
            },
            SinkSpec::WindowedPrr { window_s } => SinkState::WindowedPrr {
                ring: RateRing::new(*window_s),
            },
            SinkSpec::WindowedOccupancy { window_s } => SinkState::WindowedOccupancy {
                ring: RateRing::new(*window_s),
                peak: 0.0,
            },
            SinkSpec::Counters => SinkState::Counters {
                counts: [0; TelemetryKind::COUNT],
            },
        }
    }

    fn consume(&mut self, at: Time, event: &TelemetryEvent) {
        match self {
            SinkState::Quantiles { data, sketch } => {
                let sample_ms = match (*data, event) {
                    (Dataset::DeliveryLatencyMs, TelemetryEvent::Delivery { latency_ns, .. }) => {
                        Some(*latency_ns as f64 / 1e6)
                    }
                    (
                        Dataset::TransactionLatencyMs,
                        TelemetryEvent::Transaction { span_ns, .. },
                    ) => Some(*span_ns as f64 / 1e6),
                    (Dataset::PollLatencyMs, TelemetryEvent::Grant { waited_ns, .. }) => {
                        Some(*waited_ns as f64 / 1e6)
                    }
                    _ => None,
                };
                if let Some(ms) = sample_ms {
                    sketch.add(ms);
                }
            }
            SinkState::WindowedPrr { ring } => match event {
                TelemetryEvent::Attempt { .. } => ring.attempt(at),
                TelemetryEvent::Delivery { .. } => ring.delivered(at),
                _ => {}
            },
            SinkState::WindowedOccupancy { ring, peak } => {
                if let TelemetryEvent::Occupancy { occupancy, .. } = event {
                    // Per-mille resolution keeps the ring integral (and
                    // hence exactly mergeable/deterministic).
                    ring.record(at, (occupancy * 1000.0).round() as u64, 1000);
                    *peak = peak.max(*occupancy);
                }
            }
            SinkState::Counters { counts } => {
                counts[event.kind() as usize] += 1;
            }
        }
    }

    fn report(&self) -> SinkReport {
        match self {
            SinkState::Quantiles { data, sketch } => SinkReport::Quantiles {
                data: *data,
                sketch: sketch.clone(),
            },
            SinkState::WindowedPrr { ring } => SinkReport::WindowedPrr {
                last: ring.rate(),
                worst: ring.worst(),
            },
            SinkState::WindowedOccupancy { ring, peak } => SinkReport::WindowedOccupancy {
                last: ring.rate(),
                peak: *peak,
            },
            SinkState::Counters { counts } => SinkReport::Counters { counts: *counts },
        }
    }
}

/// What one subscription's sink reduced its matched events to.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkReport {
    /// Quantile sketch results (the sketch itself is returned so callers
    /// — and the Monte-Carlo runner — can merge across runs).
    Quantiles {
        /// The dataset tracked.
        data: Dataset,
        /// The merged sketch.
        sketch: LatencySketch,
    },
    /// Windowed PRR results.
    WindowedPrr {
        /// PRR over the final trailing window.
        last: Option<f64>,
        /// Worst trailing-window PRR the run saw.
        worst: Option<f64>,
    },
    /// Windowed occupancy results.
    WindowedOccupancy {
        /// Mean occupancy over the final trailing window.
        last: Option<f64>,
        /// Peak instantaneous occupancy sample.
        peak: f64,
    },
    /// Monotonic event counters, indexed by [`TelemetryKind`].
    Counters {
        /// Matched events per kind.
        counts: [u64; TelemetryKind::COUNT],
    },
}

impl SinkReport {
    /// One-line summary for reports.
    pub fn render(&self) -> String {
        match self {
            SinkReport::Quantiles { data, sketch } => {
                if sketch.is_empty() {
                    format!("{}: no samples", data.label())
                } else {
                    format!(
                        "{}: n {}  mean {:.3} ms  p50 {:.3}  p90 {:.3}  p99 {:.3} ms",
                        data.label(),
                        sketch.count(),
                        sketch.mean().unwrap_or(0.0),
                        sketch.quantile(0.5).unwrap_or(0.0),
                        sketch.quantile(0.9).unwrap_or(0.0),
                        sketch.quantile(0.99).unwrap_or(0.0),
                    )
                }
            }
            SinkReport::WindowedPrr { last, worst } => format!(
                "windowed PRR: last {}  worst {}",
                last.map_or("—".into(), |p| format!("{p:.3}")),
                worst.map_or("—".into(), |p| format!("{p:.3}")),
            ),
            SinkReport::WindowedOccupancy { last, peak } => format!(
                "windowed occupancy: last {}  peak {peak:.3}",
                last.map_or("—".into(), |o| format!("{o:.3}")),
            ),
            SinkReport::Counters { counts } => {
                let parts: Vec<String> = TelemetryKind::ALL
                    .iter()
                    .filter(|k| counts[**k as usize] > 0)
                    .map(|k| format!("{} {}", k.label(), counts[*k as usize]))
                    .collect();
                if parts.is_empty() {
                    "counters: none matched".into()
                } else {
                    format!("counters: {}", parts.join("  "))
                }
            }
        }
    }
}

/// One subscription's final result.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionReport {
    /// The subscription's name.
    pub name: String,
    /// What its sink reduced to.
    pub report: SinkReport,
}

/// Everything the telemetry layer produced over one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Engine events processed (every queue pop, including the horizon).
    pub events: u64,
    /// Per-subscription results, in registration order.
    pub subscriptions: Vec<SubscriptionReport>,
    /// Collected progress lines (empty unless a cadence was configured).
    pub progress: Vec<String>,
}

impl TelemetryReport {
    /// A plain-text rendering: the collected progress lines (in emission
    /// order), then each subscription's result.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.progress {
            out.push_str(line);
            out.push('\n');
        }
        for sub in &self.subscriptions {
            out.push_str(&format!("[{}] {}\n", sub.name, sub.report.render()));
        }
        out
    }
}

struct SubRuntime {
    name: String,
    mask: u32,
    filter: CompiledFilter,
    state: SinkState,
}

/// The per-run telemetry engine: compiled subscriptions plus the global
/// dispatch mask. Owned by [`crate::engine::NetworkSim::run`]; the hot
/// path asks [`TelemetryRuntime::wants`] (one mask test) before
/// constructing an event.
pub struct TelemetryRuntime {
    mask: u32,
    subs: Vec<SubRuntime>,
    events: u64,
}

impl TelemetryRuntime {
    /// Compiles `config` against the scenario's entity counts.
    pub fn new(config: &TelemetryConfig, n_tags: usize, n_carriers: usize) -> TelemetryRuntime {
        let subs: Vec<SubRuntime> = config
            .subscriptions
            .iter()
            .map(|sub| SubRuntime {
                name: sub.name.clone(),
                mask: sub.filter.kind_mask() & sub.sink.interest_mask(),
                filter: CompiledFilter::compile(&sub.filter, n_tags, n_carriers),
                state: SinkState::build(&sub.sink),
            })
            .collect();
        let mask = subs.iter().fold(0, |m, s| m | s.mask);
        TelemetryRuntime {
            mask,
            subs,
            events: 0,
        }
    }

    /// Whether any subscription consumes `kind` — the one-branch gate the
    /// engine pays per emit site when nothing is subscribed (mask == 0).
    #[inline]
    pub fn wants(&self, kind: TelemetryKind) -> bool {
        self.mask & kind.bit() != 0
    }

    /// Dispatches an event to every matching subscription. Call only
    /// after [`TelemetryRuntime::wants`] said yes (the engine idiom is
    /// `if tele.wants(K) { tele.emit(at, &event) }`).
    pub fn emit(&mut self, at: Time, event: &TelemetryEvent) {
        let bit = event.kind().bit();
        for sub in &mut self.subs {
            if sub.mask & bit != 0 && sub.filter.matches(at, event) {
                sub.state.consume(at, event);
            }
        }
    }

    /// Counts one processed engine event (the progress line's event rate).
    #[inline]
    pub fn tick_event(&mut self) {
        self.events += 1;
    }

    /// Engine events processed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Finalizes into the run's [`TelemetryReport`] (progress lines are
    /// appended by the engine).
    pub fn finish(self, progress: Vec<String>) -> TelemetryReport {
        TelemetryReport {
            events: self.events,
            subscriptions: self
                .subs
                .iter()
                .map(|s| SubscriptionReport {
                    name: s.name.clone(),
                    report: s.state.report(),
                })
                .collect(),
            progress,
        }
    }
}

/// The soak-run progress emitter: one deterministic status line every
/// `every_s` simulated seconds — sim-time, events processed, events per
/// simulated second, live PRR, re-stripe count and a live p99
/// poll-latency estimate from a [`P2Quantile`]. Lines are collected into
/// the report; with `live` they are also mirrored to stderr as the run
/// executes (stderr so digest-checked stdout stays clean).
pub struct ProgressRuntime {
    period: u64,
    next: Time,
    live: bool,
    /// Live p99 poll-latency estimator (fed on every grant).
    pub p2_poll_ms: P2Quantile,
    lines: Vec<String>,
}

impl ProgressRuntime {
    /// A progress emitter on an `every_s` cadence.
    pub fn new(every_s: f64, live: bool) -> ProgressRuntime {
        let period = Time::from_secs(every_s).as_nanos().max(1);
        ProgressRuntime {
            period,
            next: Time(period),
            live,
            p2_poll_ms: P2Quantile::new(0.99),
            lines: Vec::new(),
        }
    }

    /// Whether a status line is due at `at`.
    #[inline]
    pub fn due(&self, at: Time) -> bool {
        at >= self.next
    }

    /// Emits the status line for the period(s) covering `at`.
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &mut self,
        at: Time,
        events: u64,
        attempts: usize,
        delivered: usize,
        restripes: usize,
    ) {
        // Catch up over idle gaps without emitting duplicate lines.
        while self.next <= at {
            self.next = Time(self.next.as_nanos() + self.period);
        }
        let t_s = at.as_secs();
        let rate = if t_s > 0.0 { events as f64 / t_s } else { 0.0 };
        let prr = if attempts > 0 {
            format!("{:.3}", delivered as f64 / attempts as f64)
        } else {
            "—".into()
        };
        let p99 = self
            .p2_poll_ms
            .estimate()
            .map_or("—".into(), |v| format!("{v:.2} ms"));
        let line = format!(
            "[progress] t={t_s:.1}s events={events} ev/sim-s={rate:.0} prr={prr} \
             restripes={restripes} poll-p99≈{p99}"
        );
        if self.live {
            eprintln!("{line}");
        }
        self.lines.push(line);
    }

    /// The collected lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }
}

/// Fixed-width rate bins: the streaming substitute for the stored
/// per-sample mobility/occupancy series. Sample `x` lands in bin
/// `floor(x / width)`; band queries sum the bins their range covers, so
/// answers are exact at bin boundaries and within one bin width
/// otherwise. Memory is O(range / width), independent of run length.
#[derive(Debug, Clone, PartialEq)]
pub struct RateBins {
    width: f64,
    bins: Vec<(usize, usize)>,
}

impl RateBins {
    /// Bins of `width` units each.
    pub fn new(width: f64) -> RateBins {
        RateBins {
            width: width.max(f64::MIN_POSITIVE),
            bins: Vec::new(),
        }
    }

    /// Accumulates `attempts`/`delivered` at coordinate `x`.
    pub fn add(&mut self, x: f64, attempts: usize, delivered: usize) {
        let idx = (x / self.width).floor().max(0.0) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, (0, 0));
        }
        self.bins[idx].0 += attempts;
        self.bins[idx].1 += delivered;
    }

    /// Adds another set of bins in, index by index (exact integer sums, so
    /// merge order cannot change any readout — the sharded executor and
    /// Monte-Carlo pooling rely on this). Both sides must use the same
    /// bin width, which every engine-built instance does
    /// ([`crate::metrics::DISPLACEMENT_BIN_M`] /
    /// [`crate::metrics::OCCUPANCY_BIN`]).
    pub fn merge(&mut self, other: &RateBins) {
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), (0, 0));
        }
        for (mine, &(attempts, delivered)) in self.bins.iter_mut().zip(&other.bins) {
            mine.0 += attempts;
            mine.1 += delivered;
        }
    }

    /// Pooled rate over `[min, max)` (bins overlapping the range), with
    /// the attempt count it is based on; `None` when no attempts landed
    /// there.
    pub fn band(&self, min: f64, max: f64) -> Option<(f64, usize)> {
        let lo = (min / self.width).floor().max(0.0) as usize;
        let hi = if max.is_finite() {
            ((max / self.width).ceil().max(0.0) as usize).min(self.bins.len())
        } else {
            self.bins.len()
        };
        let (mut attempts, mut delivered) = (0usize, 0usize);
        for &(a, d) in self.bins.iter().take(hi).skip(lo.min(hi)) {
            attempts += a;
            delivered += d;
        }
        (attempts > 0).then(|| (delivered as f64 / attempts as f64, attempts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_tracks_quantiles_within_gamma() {
        use interscatter_sim::measurements::Cdf;
        // A deterministic heavy-tailed-ish stream vs the exact Cdf.
        let mut sketch = LatencySketch::new();
        let mut cdf = Cdf::new();
        let mut x = 0.37f64;
        for _ in 0..50_000 {
            // A fixed-point chaotic map spreads samples over ~3 decades.
            x = (x * 997.0 + 0.123).rem_euclid(1.0);
            let v = 0.1 + 1000.0 * x * x;
            sketch.add(v);
            cdf.push(v);
        }
        assert_eq!(sketch.count(), 50_000);
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let exact = cdf.quantile(q).unwrap();
            let approx = sketch.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.01, "q{q}: exact {exact} vs sketch {approx} ({rel})");
        }
        // Mean and range are exact.
        let mean_exact: f64 = cdf.samples().iter().sum::<f64>() / cdf.samples().len() as f64;
        assert!((sketch.mean().unwrap() - mean_exact).abs() < 1e-9);
        let (min, max) = sketch.range().unwrap();
        assert_eq!(Some((min, max)), cdf.range());
    }

    #[test]
    fn sketch_merge_equals_single_stream() {
        let mut whole = LatencySketch::new();
        let mut a = LatencySketch::new();
        let mut b = LatencySketch::new();
        for i in 0..10_000 {
            let v = 0.01 * (i as f64 + 1.0);
            whole.add(v);
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
        }
        a.merge(&b);
        // Bucket counts, totals and range merge exactly; the running sum
        // is a float accumulation whose association differs between the
        // split and single streams, so compare it by value instead.
        assert_eq!(a.buckets, whole.buckets, "merged buckets must match");
        assert_eq!(a.zeros, whole.zeros);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.range(), whole.range());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "quantile {q}");
        }
        // Merging an empty sketch is a no-op; merging into empty copies.
        let mut empty = LatencySketch::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        whole.merge(&LatencySketch::new());
        assert_eq!(empty, whole);
    }

    #[test]
    fn sketch_edge_cases() {
        let empty = LatencySketch::new();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.mean(), None);

        let mut zeros = LatencySketch::new();
        zeros.add(0.0);
        zeros.add(0.0);
        zeros.add(5.0);
        assert_eq!(zeros.quantile(0.0), Some(0.0));
        assert!((zeros.quantile(1.0).unwrap() - 5.0).abs() / 5.0 < 0.01);

        let mut one = LatencySketch::new();
        one.add(42.0);
        assert_eq!(one.quantile(0.5), Some(42.0), "clamped to the range");
    }

    #[test]
    fn p2_estimates_quantiles() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), None);
        p2.add(3.0);
        assert_eq!(p2.estimate(), Some(3.0), "exact below five samples");
        for v in [1.0, 2.0, 4.0, 5.0] {
            p2.add(v);
        }
        assert_eq!(p2.estimate(), Some(3.0));
        // A long uniform ramp: the median estimate converges near 500.
        let mut p2 = P2Quantile::new(0.5);
        let mut x = 0.5f64;
        for _ in 0..20_000 {
            x = (x * 997.0 + 0.123).rem_euclid(1.0);
            p2.add(1000.0 * x);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 500.0).abs() < 25.0, "median estimate {est}");
        // p99 tracks the tail.
        let mut p99 = P2Quantile::new(0.99);
        let mut x = 0.5f64;
        for _ in 0..20_000 {
            x = (x * 997.0 + 0.123).rem_euclid(1.0);
            p99.add(1000.0 * x);
        }
        let est = p99.estimate().unwrap();
        assert!((est - 990.0).abs() < 15.0, "p99 estimate {est}");
    }

    #[test]
    fn rate_ring_windows_prr() {
        let mut ring = RateRing::new(1.0);
        // First half-window: perfect delivery.
        for i in 0..100 {
            let at = Time(i * 5_000_000);
            ring.attempt(at);
            ring.delivered(at);
        }
        assert_eq!(ring.rate(), Some(1.0));
        // Second window: everything lost — the trailing window decays to
        // 0 once the good slots expire.
        for i in 0..400 {
            let at = Time(500_000_000 + i * 5_000_000);
            ring.attempt(at);
        }
        let late = ring.rate().unwrap();
        assert!(late < 0.1, "late PRR {late}");
        assert!(ring.worst().unwrap() <= late);
    }

    #[test]
    fn rate_bins_answer_band_queries() {
        let mut bins = RateBins::new(0.5);
        bins.add(0.2, 10, 10);
        bins.add(1.7, 10, 2);
        bins.add(3.0, 4, 0);
        let (near, n) = bins.band(0.0, 1.0).unwrap();
        assert!((near - 1.0).abs() < 1e-12 && n == 10);
        let (far, n) = bins.band(1.5, f64::INFINITY).unwrap();
        assert!((far - 2.0 / 14.0).abs() < 1e-12 && n == 14);
        assert!(bins.band(10.0, 20.0).is_none());
    }

    #[test]
    fn filters_compile_and_match() {
        let f = Filter::all()
            .tags([1, 3])
            .kinds([TelemetryKind::Delivery])
            .window(1.0, 2.0);
        f.validate(4, 2).unwrap();
        assert!(Filter::all().tags([9]).validate(4, 2).is_err());
        assert!(Filter::all().carriers([5]).validate(4, 2).is_err());
        assert!(Filter::all().window(2.0, 1.0).validate(4, 2).is_err());

        let c = CompiledFilter::compile(&f, 4, 2);
        let hit = TelemetryEvent::Delivery {
            tag: 3,
            latency_ns: 5,
            bits: 8,
        };
        let misses_tag = TelemetryEvent::Delivery {
            tag: 2,
            latency_ns: 5,
            bits: 8,
        };
        assert!(c.matches(Time::from_secs(1.5), &hit));
        assert!(!c.matches(Time::from_secs(1.5), &misses_tag));
        assert!(!c.matches(Time::from_secs(0.5), &hit), "before the window");
        assert!(
            !c.matches(Time::from_secs(2.0), &hit),
            "window end exclusive"
        );
        // Entity axes ignore events without that entity.
        let occ = TelemetryEvent::Occupancy {
            carrier: 0,
            subband: 0,
            occupancy: 0.4,
        };
        assert!(CompiledFilter::compile(&Filter::all().tags([0]), 4, 2).matches(Time::ZERO, &occ));
    }

    #[test]
    fn runtime_masks_and_dispatches() {
        let none = TelemetryRuntime::new(&TelemetryConfig::new(), 4, 2);
        assert!(!none.wants(TelemetryKind::Delivery), "empty mask");

        let config = TelemetryConfig::new()
            .subscribe(Subscription::new(
                "poll",
                Filter::all(),
                SinkSpec::Quantiles(Dataset::PollLatencyMs),
            ))
            .subscribe(Subscription::new(
                "tag1",
                Filter::all().tags([1]),
                SinkSpec::Counters,
            ));
        config.validate(4, 2).unwrap();
        let mut rt = TelemetryRuntime::new(&config, 4, 2);
        assert!(rt.wants(TelemetryKind::Grant));
        assert!(rt.wants(TelemetryKind::Delivery), "counters want all");
        rt.emit(
            Time(10),
            &TelemetryEvent::Grant {
                tag: 1,
                carrier: 0,
                waited_ns: 2_000_000,
            },
        );
        rt.emit(
            Time(20),
            &TelemetryEvent::Grant {
                tag: 0,
                carrier: 0,
                waited_ns: 8_000_000,
            },
        );
        let report = rt.finish(Vec::new());
        let SinkReport::Quantiles { sketch, .. } = &report.subscriptions[0].report else {
            panic!("quantile sink");
        };
        assert_eq!(sketch.count(), 2, "unfiltered sketch saw both grants");
        let SinkReport::Counters { counts } = &report.subscriptions[1].report else {
            panic!("counter sink");
        };
        assert_eq!(counts[TelemetryKind::Grant as usize], 1, "tag filter held");
        assert!(report.render().contains("poll latency"));
        assert!(report.render().contains("grant 1"));
    }

    #[test]
    fn config_validation_rejects_bad_parameters() {
        let bad_window = TelemetryConfig::new().subscribe(Subscription::new(
            "w",
            Filter::all(),
            SinkSpec::WindowedPrr { window_s: 0.0 },
        ));
        assert!(bad_window.validate(4, 2).is_err());
        let bad_progress = TelemetryConfig::new().with_progress(0.0);
        assert!(bad_progress.validate(4, 2).is_err());
        TelemetryConfig::new()
            .streaming()
            .with_progress(1.0)
            .validate(4, 2)
            .unwrap();
    }

    #[test]
    fn progress_lines_are_deterministic() {
        let mut p = ProgressRuntime::new(1.0, false);
        assert!(!p.due(Time::from_secs(0.5)));
        assert!(p.due(Time::from_secs(1.0)));
        p.p2_poll_ms.add(2.0);
        p.emit(Time::from_secs(1.0), 1000, 80, 72, 0);
        assert!(!p.due(Time::from_secs(1.5)));
        p.emit(Time::from_secs(2.0), 2000, 160, 150, 1);
        let lines = p.into_lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("t=1.0s"), "{}", lines[0]);
        assert!(lines[0].contains("events=1000"));
        assert!(lines[0].contains("prr=0.900"));
        assert!(lines[1].contains("restripes=1"));
    }
}
