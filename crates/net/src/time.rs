//! Integer simulation time.
//!
//! The engine keeps time in whole nanoseconds so that event ordering is
//! exact: floating-point timestamps accumulate rounding that can reorder
//! ties across otherwise identical runs, which would break the
//! byte-identical-trace guarantee.

/// A point in simulated time, nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);

    /// Builds an instant from integer nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Time {
        Time(nanos)
    }

    /// Converts a duration in seconds to integer nanoseconds (rounded).
    ///
    /// The rounding makes this conversion safe exactly **once** per
    /// duration: a periodic schedule that re-rounds every step (`t =
    /// t.after_secs(period)`) picks up the same sub-nanosecond bias each
    /// tick and drifts without bound. Periodic schedules (carrier slots,
    /// mobility ticks) must convert the period once and advance with
    /// [`Time::after_nanos`], which is exact — see
    /// `periodic_schedules_must_use_integer_nanos` below for the contract.
    pub fn from_secs(seconds: f64) -> Time {
        debug_assert!(seconds >= 0.0, "negative duration");
        Time((seconds * 1e9).round() as u64)
    }

    /// This instant as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since the start of the run.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant advanced by `seconds`.
    pub fn after_secs(self, seconds: f64) -> Time {
        Time(self.0 + Time::from_secs(seconds).0)
    }

    /// This instant advanced by `nanos` nanoseconds.
    pub fn after_nanos(self, nanos: u64) -> Time {
        Time(self.0 + nanos)
    }

    /// The elapsed time since `earlier`, saturating at zero.
    pub fn since(self, earlier: Time) -> Time {
        Time(self.0.saturating_sub(earlier.0))
    }
}

impl core::fmt::Display for Time {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = Time::from_secs(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
        assert_eq!(Time::ZERO.as_nanos(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1.0).after_secs(0.25).after_nanos(10);
        assert_eq!(t.as_nanos(), 1_250_000_010);
        assert_eq!(t.since(Time::from_secs(1.0)).as_nanos(), 250_000_010);
        assert_eq!(Time::ZERO.since(t), Time::ZERO);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time::from_secs(96e-6).as_nanos(), 96_000);
        assert_eq!(Time::from_nanos(96_000), Time::from_secs(96e-6));
    }

    #[test]
    fn periodic_schedules_use_the_integer_nanosecond_grid() {
        // A period whose nanosecond count is not exactly representable:
        // 1/3 µs is 333.33… ns, rounded to 333 ns per conversion.
        let period_s = 1e-6 / 3.0;
        let period_ns = Time::from_secs(period_s).as_nanos();
        assert_eq!(period_ns, 333);

        // The engine's contract: a period is quantized to the ns grid
        // exactly once, and tick k fires at exactly k · period_ns — no
        // accumulation on top of that single rounding, even over a
        // million ticks.
        let mut t = Time::ZERO;
        for _ in 0..1_000_000 {
            t = t.after_nanos(period_ns);
        }
        assert_eq!(t.as_nanos(), 1_000_000 * period_ns);

        // Chaining `after_secs` instead re-rounds the period through f64
        // nanoseconds at every step, burying the same sub-ns bias a
        // million times over: the millionth tick lands 333 µs away from
        // the single-rounding conversion of the same total duration.
        // That silent cadence redefinition is why carrier slots and
        // mobility ticks advance with `after_nanos`.
        let chained = (0..1_000_000).fold(Time::ZERO, |acc, _| acc.after_secs(period_s));
        let single = Time::from_secs(1_000_000.0 * period_s);
        assert_eq!(chained, t, "per-step rounding bias is what accumulates");
        assert!(
            single.as_nanos() - chained.as_nanos() > 300_000,
            "chained {} vs single-rounded {}",
            chained.as_nanos(),
            single.as_nanos()
        );
    }
}
