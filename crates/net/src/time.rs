//! Integer simulation time.
//!
//! The engine keeps time in whole nanoseconds so that event ordering is
//! exact: floating-point timestamps accumulate rounding that can reorder
//! ties across otherwise identical runs, which would break the
//! byte-identical-trace guarantee.

/// A point in simulated time, nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);

    /// Converts a duration in seconds to integer nanoseconds (rounded).
    pub fn from_secs(seconds: f64) -> Time {
        debug_assert!(seconds >= 0.0, "negative duration");
        Time((seconds * 1e9).round() as u64)
    }

    /// This instant as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanoseconds since the start of the run.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant advanced by `seconds`.
    pub fn after_secs(self, seconds: f64) -> Time {
        Time(self.0 + Time::from_secs(seconds).0)
    }

    /// This instant advanced by `nanos` nanoseconds.
    pub fn after_nanos(self, nanos: u64) -> Time {
        Time(self.0 + nanos)
    }

    /// The elapsed time since `earlier`, saturating at zero.
    pub fn since(self, earlier: Time) -> Time {
        Time(self.0.saturating_sub(earlier.0))
    }
}

impl core::fmt::Display for Time {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = Time::from_secs(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
        assert_eq!(Time::ZERO.as_nanos(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1.0).after_secs(0.25).after_nanos(10);
        assert_eq!(t.as_nanos(), 1_250_000_010);
        assert_eq!(t.since(Time::from_secs(1.0)).as_nanos(), 250_000_010);
        assert_eq!(Time::ZERO.since(t), Time::ZERO);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time::from_secs(96e-6).as_nanos(), 96_000);
    }
}
