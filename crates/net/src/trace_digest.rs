//! The FNV-1a fingerprint shared by every digest-checked surface: event
//! traces ([`crate::event::EventTrace::digest`]), the digest-checked
//! examples, the determinism tests, and the soak-run report digest.
//!
//! One implementation, one set of constants — the digests pinned across
//! PRs (`round_robin_reproduces_pre_extraction_traces`,
//! `constant_coex_reproduces_legacy_digests`) all hash through here, so a
//! typo'd constant in a copy would show up as a digest mismatch instead of
//! silently forking the fingerprint space.

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;

/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The 64-bit FNV-1a hash of `bytes` — the fingerprint the digest-checked
/// examples print and the regression tests pin across refactors.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// [`fnv1a`] over a string's UTF-8 bytes, for digesting report text (the
/// soak example fingerprints its whole deterministic output this way).
pub fn fnv1a_str(text: &str) -> u64 {
    fnv1a(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
        assert_eq!(fnv1a_str("foobar"), fnv1a(b"foobar"));
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(fnv1a(b"trace a"), fnv1a(b"trace b"));
    }
}
