//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no cargo-registry access, so this crate vendors
//! the subset of the criterion API the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a plain
//! wall-clock loop — a short warm-up, then `sample_size` timed samples —
//! reporting min/mean/max per iteration. It has none of criterion's
//! statistics, but keeps `cargo bench` runnable and the numbers comparable
//! across commits on the same machine.
//!
//! Two command-line flags (read from the arguments cargo forwards after
//! `cargo bench … --`) serve the CI perf trajectory:
//!
//! * `--json` — after each human-readable line, also emit one JSON object
//!   per benchmark (`{"bench":…,"mean_ns":…,"min_ns":…,"max_ns":…,…}`) so
//!   a workflow can `grep '^{'` the summaries into an artifact like
//!   `BENCH_net.json` and diff trajectories across commits.
//! * `--quick` — cap samples at 10 and shrink the warm-up budget, the
//!   low-noise-enough tier CI can afford on every push.
//!
//! Unknown flags (cargo's own `--bench`, test filters) are ignored, like
//! real criterion does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many elements per iteration.
    Elements(u64),
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Output/duration modifiers parsed from the benchmark binary's command
/// line — the subset of criterion's CLI this workspace uses.
#[derive(Debug, Clone, Copy, Default)]
struct Mode {
    /// Emit one JSON summary line per benchmark alongside the human line.
    json: bool,
    /// Cap samples at 10 and shrink the warm-up budget.
    quick: bool,
}

impl Mode {
    /// Reads `--json`/`--quick` from the process arguments, ignoring
    /// whatever else cargo forwards (`--bench`, filter strings).
    fn from_args() -> Self {
        let mut mode = Mode::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--json" => mode.json = true,
                "--quick" => mode.quick = true,
                _ => {}
            }
        }
        mode
    }
}

/// The benchmark driver handed to every target function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            mode: Mode::from_args(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Forces JSON summary lines on or off, overriding the command line
    /// (shim extension, mainly for tests).
    pub fn with_json(mut self, json: bool) -> Self {
        self.mode.json = json;
        self
    }

    /// Forces quick mode on or off, overriding the command line (shim
    /// extension, mainly for tests).
    pub fn with_quick(mut self, quick: bool) -> Self {
        self.mode.quick = quick;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, None, self.mode, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let mode = self.mode;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
            mode,
        }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    mode: Mode,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.throughput, self.mode, f);
        self
    }

    /// Ends the group. (No-op: provided for API compatibility.)
    pub fn finish(self) {}
}

/// Timer handed to the benchmark closure; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = self.iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One warm-up pass to choose an iteration count, then `samples` timed runs.
fn run_benchmark<F>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mode: Mode,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let samples = if mode.quick { samples.min(10) } else { samples };
    // Warm-up: find how many iterations fit in the per-sample budget so
    // short routines are timed in batches and long routines run once per
    // sample.
    let budget = Duration::from_millis(if mode.quick { 10 } else { 50 });
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let min = per_iter_ns.first().copied().unwrap_or(0.0);
    let max = per_iter_ns.last().copied().unwrap_or(0.0);
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len().max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / mean * 1e3)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  ({:.3} MiB/s)", n as f64 / mean * 1e9 / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<48} {:>12}/iter  [min {}, max {}]{rate}",
        format_ns(mean),
        format_ns(min),
        format_ns(max),
    );
    if mode.json {
        // One object per line (JSON-lines): easy to `grep '^{'` into an
        // artifact and to diff across commits.
        let throughput_field = match throughput {
            Some(Throughput::Elements(n)) => format!(",\"elements_per_iter\":{n}"),
            Some(Throughput::Bytes(n)) => format!(",\"bytes_per_iter\":{n}"),
            None => String::new(),
        };
        println!(
            "{{\"bench\":\"{name}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\
             \"max_ns\":{max:.1},\"samples\":{samples},\"iters_per_sample\":{iters_per_sample}\
             {throughput_field}}}"
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark targets into one runnable group function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Generates the `main` function running the given groups, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(shim_group, target);

    #[test]
    fn harness_runs_and_times() {
        shim_group();
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn json_and_quick_modes_run() {
        // The JSON emitter and the quick-tier sample cap share the same
        // code path as the human output; exercise both together.
        let mut c = Criterion::default()
            .sample_size(40)
            .with_json(true)
            .with_quick(true);
        let mut group = c.benchmark_group("modes");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.finish();
        // Flags default off unless the process args carry them (the test
        // binary's args do not).
        let plain = Criterion::default();
        assert!(!plain.mode.json && !plain.mode.quick);
    }
}
