//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a cargo
//! registry, so the workspace vendors the *API surface it actually uses*
//! behind the same crate name: [`Rng`], [`SeedableRng`], [`rngs::StdRng`]
//! and [`rngs::SmallRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic, fast, and identical across platforms, which
//! is what the simulations need. The value streams do **not** match the
//! upstream `rand 0.8` streams; seeds only reproduce results within this
//! workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw output,
/// mirroring `rand`'s `Standard` distribution.
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl SampleStandard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits onto [0, 1) with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be drawn from, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $ty)
            }
        }
    )*};
}

impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $ty;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $ty;
                start + (end - start) * u
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard (uniform) distribution of its type.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Mixes a base seed with a stream id and an index into an independent
/// sub-stream seed (SplitMix64-style finalizer over both inputs).
///
/// This is the canonical derivation every named per-entity stream in the
/// workspace routes through: same `(base, stream, index)` → same seed on
/// every platform, different streams/indices → decorrelated generators.
/// The simulation crates are not allowed to seed generators ad hoc — the
/// `detlint` pass's `stray_rng` rule points offenders here (via the named
/// constructors in `net::entities::streams`).
pub fn derive_stream_seed(base: u64, stream: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(stream.wrapping_mul(0xD6E8_FEB8_6659_FD93))
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The named stream-constructor surface: the one sanctioned way for
/// simulation code to build a generator for `(stream, index)`.
pub mod stream {
    use super::{derive_stream_seed, rngs::SmallRng, SeedableRng};

    /// A per-entity [`SmallRng`] on the given stream: byte-identical to
    /// `SmallRng::seed_from_u64(derive_stream_seed(base, stream, index))`,
    /// with the derivation spelled once, here.
    pub fn small_rng(base: u64, stream: u64, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(derive_stream_seed(base, stream, index))
    }
}

/// SplitMix64 step, used to expand seeds into full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The concrete generators, under the same module path as upstream `rand`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng` (xoshiro256**, not ChaCha12).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (xoshiro256**, per-entity use).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Decorrelate from StdRng streams seeded with the same value.
            SmallRng(Xoshiro256::seed_from_u64(seed ^ 0x5111_5111_5111_5111))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&y));
            let z = rng.gen_range(0..32);
            assert!((0..32).contains(&z));
            let w = rng.gen_range(0..=1u8);
            assert!(w <= 1);
            let s = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..2000).map(|_| rng.gen()).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(draws.iter().any(|&x| x < 0.1));
        assert!(draws.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((400..600).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn small_rng_differs_from_std_rng() {
        let mut small = SmallRng::seed_from_u64(42);
        let mut std = StdRng::seed_from_u64(42);
        assert_ne!(small.gen::<u64>(), std.gen::<u64>());
    }

    #[test]
    fn stream_seeds_separate_streams_and_indices() {
        let a = super::derive_stream_seed(1, 1, 0);
        let b = super::derive_stream_seed(1, 1, 1);
        let c = super::derive_stream_seed(1, 2, 0);
        let d = super::derive_stream_seed(2, 1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(b, c);
    }

    #[test]
    fn stream_constructor_matches_manual_derivation() {
        let mut via_stream = super::stream::small_rng(42, 3, 7);
        let mut manual = SmallRng::seed_from_u64(super::derive_stream_seed(42, 3, 7));
        for _ in 0..16 {
            assert_eq!(via_stream.gen::<u64>(), manual.gen::<u64>());
        }
    }
}
