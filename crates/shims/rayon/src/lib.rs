//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no cargo-registry access, so this crate vendors
//! the parallel-iterator subset the workspace uses: `into_par_iter()` /
//! `par_iter()` on vectors, slices and integer ranges, followed by `map` and
//! `collect::<Vec<_>>()`. Work is split into contiguous chunks across
//! `std::thread::scope` workers (one per available core), so order is
//! preserved and results are identical to the sequential equivalent — only
//! wall-clock time changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// A collection of items about to be processed in parallel.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A [`ParIter`] with a pending map operation.
pub struct MapParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel (lazily, at `collect`).
    pub fn map<U, F>(self, f: F) -> MapParIter<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        MapParIter {
            items: self.items,
            f,
        }
    }

    /// Collects the items unchanged.
    pub fn collect<C: FromParIter<T>>(self) -> C {
        C::from_vec(self.items)
    }
}

impl<T, U, F> MapParIter<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Runs the pending map across worker threads and gathers the results
    /// in input order.
    pub fn collect<C: FromParIter<U>>(self) -> C {
        C::from_vec(parallel_map(self.items, &self.f))
    }
}

/// Collection types a parallel iterator can finish into.
pub trait FromParIter<T> {
    /// Builds the collection from items already in order.
    fn from_vec(items: Vec<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_vec(items: Vec<T>) -> Self {
        items
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = available_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into `threads` contiguous chunks; each worker maps its chunk and
    // the results are concatenated in order.
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let c: Vec<T> = items.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut results: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect();
    });
    results.into_iter().flatten().collect()
}

/// Conversion into a [`ParIter`], mirroring rayon's trait of the same name.
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            fn into_par_iter(self) -> ParIter<$ty> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range!(u32, u64, usize, i32, i64);

/// Reference-iteration over slices, mirroring rayon's trait of the same
/// name.
pub trait IntoParallelRefIterator<'a> {
    /// The reference item type produced.
    type Item: Send;
    /// Iterates the collection's elements by reference, in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The glob-importable prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Deterministic-merge helpers: the sanctioned entry points for parallel
/// work in the simulation crates.
///
/// Raw parallel-iterator chains leave the merge discipline at every call
/// site; these helpers bake it in — results always come back **in input
/// order**, regardless of which worker finished first, so a parallel run
/// is byte-identical to the sequential equivalent. The `detlint` pass's
/// `ordered_merge` rule steers all simulation-crate callers here, which
/// also pre-paves the sharded-executor work: a sharded campus run will
/// merge per-shard results through this same ordered surface.
pub mod det {
    /// Maps `f` over `items` across worker threads and returns the
    /// results in input order (the deterministic merge).
    pub fn map_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        super::parallel_map(items, &f)
    }

    /// [`map_ordered`] over an index range — the common "N independent
    /// trials" shape without materializing the input vector at call sites.
    pub fn map_indexed_ordered<U, F>(n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        map_ordered((0..n).collect(), f)
    }

    /// Runs `f(index, item)` over every item of `items`, split into
    /// `groups` contiguous chunks that execute on their own scoped
    /// threads; within a chunk items run in ascending index order.
    ///
    /// Each item is visited exactly once by exactly one worker and the
    /// chunk boundaries depend only on `(groups, items.len())`, so the
    /// result state is identical at any group count — including 1, which
    /// runs inline with no thread at all. This is the sharded executor's
    /// epoch step: one simulation cell per item, `shards` groups.
    pub fn for_each_mut_ordered<T, F>(groups: usize, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        let groups = groups.max(1).min(n.max(1));
        if groups <= 1 || n <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = n.div_ceil(groups);
        std::thread::scope(|scope| {
            for (c, group) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    for (i, item) in group.iter_mut().enumerate() {
                        f(c * chunk + i, item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        let expected: Vec<u64> = (0u64..1000).map(|i| i * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn vec_and_slice_sources() {
        let v = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let referenced: Vec<i32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(referenced, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u32> = (0u32..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = (5u32..6).into_par_iter().map(|i| i * i).collect();
        assert_eq!(one, vec![25]);
    }

    #[test]
    fn det_merge_preserves_input_order() {
        let out = super::det::map_ordered((0u64..500).collect(), |i| i * 3);
        let expected: Vec<u64> = (0u64..500).map(|i| i * 3).collect();
        assert_eq!(out, expected);
        let idx = super::det::map_indexed_ordered(100, |i| i + 1);
        let expected: Vec<usize> = (1..=100).collect();
        assert_eq!(idx, expected);
        assert!(super::det::map_ordered(Vec::<u8>::new(), |x| x).is_empty());
    }

    #[test]
    fn for_each_mut_ordered_is_group_count_invariant() {
        // Mutating in place through any number of worker groups must leave
        // the same state as the inline single-group pass.
        let mut reference: Vec<u64> = (0..97).collect();
        super::det::for_each_mut_ordered(1, &mut reference, |i, x| *x = *x * 3 + i as u64);
        for groups in [2usize, 3, 4, 8, 64, 1000] {
            let mut items: Vec<u64> = (0..97).collect();
            super::det::for_each_mut_ordered(groups, &mut items, |i, x| *x = *x * 3 + i as u64);
            assert_eq!(items, reference, "groups={groups}");
        }
        let mut empty: Vec<u64> = Vec::new();
        super::det::for_each_mut_ordered(4, &mut empty, |_, _| unreachable!());
    }
}
