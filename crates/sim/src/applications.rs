//! The three proof-of-concept applications of §5.
//!
//! * **Smart contact lens** (§5.1, Fig. 15): a 1 cm loop antenna encapsulated
//!   in PDMS, immersed in contact-lens solution, backscattering 2 Mbps Wi-Fi
//!   with the Bluetooth source 12 inches away.
//! * **Implanted neural recorder** (§5.2, Fig. 16): a 4 cm loop antenna under
//!   1/16 inch of muscle tissue, Bluetooth source 3 inches from the tissue
//!   surface.
//! * **Card-to-card communication** (§5.3, Fig. 17): two credit-card
//!   form-factor tags; one backscatters the Bluetooth single tone at
//!   100 kbps and the other receives it with its envelope detector — ambient
//!   backscatter between peers, with the smartphone as the only active
//!   radio.

use crate::uplink::UplinkScenario;
use crate::SimError;
use interscatter_backscatter::envelope::EnvelopeDetector;
use interscatter_backscatter::tag::{SidebandMode, TargetPhy};
use interscatter_channel::antenna::Antenna;
use interscatter_channel::link::{BackscatterLink, ConversionLoss};
use interscatter_channel::noise::NoiseModel;
use interscatter_channel::pathloss::LogDistanceModel;
use interscatter_channel::tissue::TissuePath;
use interscatter_dsp::units::{db_to_amplitude, inches_to_meters};
use interscatter_wifi::dot11b::DsssRate;
use rand::Rng;

/// The smart contact-lens scenario: returns the uplink scenario for a given
/// Bluetooth transmit power and lens-to-receiver distance in inches.
pub fn contact_lens_scenario(ble_tx_power_dbm: f64, rx_distance_in: f64) -> UplinkScenario {
    UplinkScenario {
        ble_tx_power_dbm,
        source_to_tag_m: inches_to_meters(12.0),
        tag_to_rx_m: inches_to_meters(rx_distance_in),
        target: TargetPhy::Wifi(DsssRate::Mbps2),
        sideband: SidebandMode::Single,
        tag_antenna: Antenna::contact_lens_loop(),
        tag_tissue: TissuePath::contact_lens(),
        propagation: LogDistanceModel::indoor_los(2.462e9),
    }
}

/// The implanted neural-recorder scenario: Bluetooth source 3 inches from
/// the tissue surface, receiver at `rx_distance_in` inches.
pub fn neural_implant_scenario(ble_tx_power_dbm: f64, rx_distance_in: f64) -> UplinkScenario {
    UplinkScenario {
        ble_tx_power_dbm,
        source_to_tag_m: inches_to_meters(3.0),
        tag_to_rx_m: inches_to_meters(rx_distance_in),
        target: TargetPhy::Wifi(DsssRate::Mbps2),
        sideband: SidebandMode::Single,
        tag_antenna: Antenna::implant_loop(),
        tag_tissue: TissuePath::neural_implant(),
        propagation: LogDistanceModel::indoor_los(2.462e9),
    }
}

/// The card-to-card scenario of §5.3.
#[derive(Debug, Clone)]
pub struct CardToCardScenario {
    /// Bluetooth transmit power, dBm (10 dBm in the paper — a phone-class
    /// device).
    pub ble_tx_power_dbm: f64,
    /// Distance from the Bluetooth device to the transmitting card, metres.
    pub source_to_tx_card_m: f64,
    /// Distance between the two cards, metres.
    pub card_to_card_m: f64,
    /// Bit rate of the card-to-card link, bits/s (100 kbps in the paper).
    pub bit_rate: f64,
    /// Propagation model.
    pub propagation: LogDistanceModel,
}

impl CardToCardScenario {
    /// The Fig. 17 setup: 10 dBm Bluetooth 3 inches from the transmitting
    /// card, receiver card at `card_distance_in` inches.
    pub fn fig17(card_distance_in: f64) -> Self {
        CardToCardScenario {
            ble_tx_power_dbm: 10.0,
            source_to_tx_card_m: inches_to_meters(3.0),
            card_to_card_m: inches_to_meters(card_distance_in),
            bit_rate: 100e3,
            propagation: LogDistanceModel::indoor_los(2.426e9),
        }
    }

    /// The backscatter link from the Bluetooth device via the transmitting
    /// card to the receiving card's envelope detector.
    pub fn link(&self) -> BackscatterLink {
        BackscatterLink {
            tx_power_dbm: self.ble_tx_power_dbm,
            tx_antenna: Antenna::monopole_2dbi(),
            // Credit-card tags use printed antennas comparable to a slightly
            // lossy monopole.
            tag_antenna: Antenna {
                name: "card antenna",
                gain_dbi: 1.0,
                efficiency: 0.7,
                mismatch_loss_db: 1.0,
                impedance: interscatter_dsp::Cplx::real(50.0),
            },
            rx_antenna: Antenna {
                name: "card antenna",
                gain_dbi: 1.0,
                efficiency: 0.7,
                mismatch_loss_db: 1.0,
                impedance: interscatter_dsp::Cplx::real(50.0),
            },
            source_to_tag: self.propagation,
            tag_to_rx: self.propagation,
            tissue_source_to_tag: TissuePath::new(),
            tissue_tag_to_rx: TissuePath::new(),
            // Card-to-card uses simple on-off keying of the tone (ambient
            // backscatter style), i.e. double-sideband energy detection.
            conversion: ConversionLoss::double_sideband(),
        }
    }

    /// Received power at the receiving card's envelope detector, dBm.
    pub fn received_power_dbm(&self) -> f64 {
        self.link()
            .received_power_dbm(self.source_to_tx_card_m, self.card_to_card_m)
    }

    /// Simulates `bits` on-off-keyed bits through the receiving card's
    /// envelope detector and returns the number of bit errors.
    ///
    /// Each bit is `samples_per_bit` samples of either reflected tone (1) or
    /// silence (0); the receiving card detects energy above its comparator
    /// threshold. The threshold is set midway between the expected on and
    /// off levels, as the cards calibrate during the preamble.
    pub fn simulate_bits<R: Rng>(&self, bits: &[u8], rng: &mut R) -> Result<usize, SimError> {
        let sample_rate = 4e6;
        let samples_per_bit = (sample_rate / self.bit_rate) as usize;
        let amplitude = db_to_amplitude(self.received_power_dbm());
        let detector = EnvelopeDetector {
            sample_rate,
            time_constant_s: 2e-6,
            // The card receivers follow the ambient-backscatter design: an
            // averaging comparator at the low 100 kbps bit rate reaches a
            // better sensitivity than the wideband interscatter detector.
            sensitivity_dbm: -58.0,
        };
        let noise = NoiseModel::envelope_detector();
        let mut waveform = Vec::with_capacity(bits.len() * samples_per_bit);
        for &b in bits {
            let level = if b & 1 == 1 { amplitude } else { 0.0 };
            for k in 0..samples_per_bit {
                let phase = k as f64 * 0.7;
                waveform.push(interscatter_dsp::Cplx::expj(phase) * level);
            }
        }
        let noisy = noise.add_noise(&waveform, rng);
        let envelope = detector.envelope(&noisy)?;
        // Decision threshold: midway between the on amplitude and the noise
        // floor, but never below the detector sensitivity.
        let threshold = (amplitude / 2.0).max(detector.sensitivity_amplitude());
        let mut errors = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            let start = i * samples_per_bit + samples_per_bit / 2;
            let end = (i + 1) * samples_per_bit;
            let level = envelope[start..end].iter().sum::<f64>() / (end - start) as f64;
            let decided = u8::from(level > threshold);
            if decided != (b & 1) {
                errors += 1;
            }
        }
        Ok(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lens_scenario_ranges_are_inches_not_feet() {
        // Fig. 15: RSSI between roughly -72 and -86 dBm over 5-40 inches at
        // 10-20 dBm. The shape matters: a steep fall-off over tens of inches.
        let near = contact_lens_scenario(20.0, 5.0).rssi_dbm();
        let far = contact_lens_scenario(20.0, 40.0).rssi_dbm();
        assert!(near > far + 10.0, "near {near}, far {far}");
        assert!((-90.0..-55.0).contains(&near), "near-lens RSSI {near} dBm");
        // At 10 dBm the same geometry is 10 dB weaker.
        assert!((contact_lens_scenario(10.0, 5.0).rssi_dbm() - (near - 10.0)).abs() < 1e-9);
    }

    #[test]
    fn implant_outranges_the_lens() {
        // Fig. 16 achieves longer range than Fig. 15 (bigger antenna, less
        // lossy medium).
        let lens = contact_lens_scenario(20.0, 24.0).rssi_dbm();
        let implant = neural_implant_scenario(20.0, 24.0).rssi_dbm();
        assert!(implant > lens + 3.0, "implant {implant} vs lens {lens}");
    }

    #[test]
    fn implant_scenario_reaches_tens_of_inches() {
        let rssi_70in = neural_implant_scenario(10.0, 70.0).rssi_dbm();
        assert!(rssi_70in > -95.0, "70-inch implant RSSI {rssi_70in}");
        assert!(rssi_70in < -60.0);
    }

    #[test]
    fn card_link_budget_and_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let near = CardToCardScenario::fig17(5.0);
        assert!(
            near.received_power_dbm() > -58.0,
            "near cards must be above detector sensitivity"
        );
        let bits: Vec<u8> = (0..64).map(|i| (i % 3 == 0) as u8).collect();
        let errors = near.simulate_bits(&bits, &mut rng).unwrap();
        assert_eq!(errors, 0, "5-inch card link should be clean");
    }

    #[test]
    fn card_link_fails_far_beyond_the_paper_range() {
        // Fig. 17 works to ~30 inches; at several times that distance the
        // received tone is below the envelope-detector sensitivity and the
        // BER collapses to ~0.5 for a balanced bit pattern.
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let far = CardToCardScenario::fig17(120.0);
        assert!(far.received_power_dbm() < -58.0);
        let bits: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let errors = far.simulate_bits(&bits, &mut rng).unwrap();
        assert!(
            errors as f64 >= 0.3 * bits.len() as f64,
            "far card link errors {errors}"
        );
    }
}
