//! Downlink simulation: 802.11g OFDM transmitter → AM modulation → path loss
//! → the tag's passive envelope detector (Fig. 13, §4.4).
//!
//! The Wi-Fi transmitter sends 36 Mbps 802.11g frames whose payload bits are
//! crafted so OFDM symbols alternate between "random" and "constant"
//! envelopes, encoding 125 kbps toward the tag. The tag's peak-detector
//! receiver measured a −32 dBm sensitivity; this simulation sweeps the
//! transmitter-to-tag distance and reports the bit error rate at each point,
//! reproducing the shape of Fig. 13: essentially error-free up to the
//! distance where the received power crosses the detector sensitivity, then
//! a rapid collapse.

use crate::measurements::BitErrorCounter;
use crate::SimError;
use interscatter_backscatter::envelope::EnvelopeDetector;
use interscatter_channel::noise::NoiseModel;
use interscatter_channel::pathloss::LogDistanceModel;
use interscatter_dsp::bits::hamming_distance;
use interscatter_dsp::units::db_to_amplitude;
use interscatter_wifi::ofdm::ppdu::{OfdmRate, OfdmTransmitter};
use interscatter_wifi::ofdm::scrambler::SeedPolicy;
use interscatter_wifi::ofdm::symbol::SYMBOL_LEN;
use interscatter_wifi::ofdm::OFDM_SAMPLE_RATE;
use rand::Rng;

/// A downlink scenario: OFDM Wi-Fi transmitter → envelope-detector receiver.
#[derive(Debug, Clone)]
pub struct DownlinkScenario {
    /// Wi-Fi transmit power, dBm (typical APs/clients: 15–20 dBm).
    pub wifi_tx_power_dbm: f64,
    /// OFDM rate used for the AM frames (36 Mbps in the paper).
    pub rate: OfdmRate,
    /// How the chipset picks scrambler seeds (determines whether the AM
    /// crafting predicts the right sequence).
    pub seed_policy: SeedPolicy,
    /// Propagation model between transmitter and tag.
    pub propagation: LogDistanceModel,
    /// The tag's envelope detector.
    pub detector: EnvelopeDetector,
}

impl DownlinkScenario {
    /// The §4.4 bench setup: 36 Mbps frames, fixed scrambler seed (ath5k
    /// behaviour), indoor line of sight, the prototype's −32 dBm detector.
    pub fn fig13_bench(wifi_tx_power_dbm: f64) -> Self {
        DownlinkScenario {
            wifi_tx_power_dbm,
            rate: OfdmRate::Mbps36,
            seed_policy: SeedPolicy::Fixed { seed: 0x2C },
            propagation: LogDistanceModel::indoor_los(2.437e9),
            detector: EnvelopeDetector::new(OFDM_SAMPLE_RATE),
        }
    }

    /// Validates the scenario.
    pub fn validate(&self) -> Result<(), SimError> {
        self.propagation.validate()?;
        self.detector.validate()?;
        Ok(())
    }

    /// Received power at the tag for a given distance, dBm (one hop — this
    /// is a conventional forward link, not a backscatter link).
    pub fn received_power_dbm(&self, distance_m: f64) -> f64 {
        // 2 dBi at the Wi-Fi transmitter and 2 dBi at the tag prototype's
        // antenna, as in the bench setup.
        self.wifi_tx_power_dbm + 2.0 + 2.0 - self.propagation.path_loss_db(distance_m)
    }

    /// Simulates the transmission of `downlink_bits` over one AM frame at
    /// `distance_m`, for frame number `frame_index` (which determines the
    /// scrambler seed under the chipset's policy). Returns the number of bit
    /// errors observed at the detector.
    pub fn simulate_frame<R: Rng>(
        &self,
        downlink_bits: &[u8],
        distance_m: f64,
        frame_index: u64,
        rng: &mut R,
    ) -> Result<usize, SimError> {
        // The crafting side predicts the seed of the *previous* frame plus
        // one for incrementing chipsets, or the pinned value; with a random
        // policy its prediction is wrong almost always.
        let actual_seed = self.seed_policy.seed_for_frame(frame_index);
        let predicted_seed = match self.seed_policy {
            SeedPolicy::Random => SeedPolicy::Random.seed_for_frame(frame_index.wrapping_add(17)),
            _ => actual_seed,
        };
        // Payload is crafted against the predicted seed...
        let crafted_tx = OfdmTransmitter::new(self.rate, predicted_seed);
        let schedule = interscatter_wifi::ofdm::am::symbol_schedule(downlink_bits);
        let data_bits =
            interscatter_wifi::ofdm::am::craft_data_bits(self.rate, predicted_seed, &schedule, rng);
        // ...but the radio scrambles with the seed it actually chose.
        let actual_tx = OfdmTransmitter::new(self.rate, actual_seed);
        let frame = actual_tx.transmit_raw_bits(&data_bits)?;
        let _ = crafted_tx;

        let amplitude = db_to_amplitude(self.received_power_dbm(distance_m));
        let attenuated: Vec<_> = frame.samples.iter().map(|&s| s * amplitude).collect();
        let noisy = NoiseModel::envelope_detector().add_noise(&attenuated, rng);
        match self.detector.decode_am_downlink(&noisy, SYMBOL_LEN) {
            Ok(decoded) => Ok(hamming_distance(&decoded, downlink_bits)),
            Err(_) => Ok(downlink_bits.len()),
        }
    }

    /// Runs `frames` AM frames of `bits_per_frame` bits at `distance_m` and
    /// returns the bit-error counter.
    pub fn bit_error_rate<R: Rng>(
        &self,
        distance_m: f64,
        frames: usize,
        bits_per_frame: usize,
        rng: &mut R,
    ) -> Result<BitErrorCounter, SimError> {
        self.validate()?;
        let mut counter = BitErrorCounter::default();
        for f in 0..frames {
            let bits: Vec<u8> = (0..bits_per_frame)
                .map(|_| rng.gen_range(0..=1u8))
                .collect();
            let errors = self.simulate_frame(&bits, distance_m, f as u64, rng)?;
            counter.record(bits_per_frame, errors);
        }
        Ok(counter)
    }

    /// The distance (metres) at which the received power crosses the
    /// detector sensitivity — the analytic range limit visible in Fig. 13.
    pub fn sensitivity_range_m(&self) -> f64 {
        // Binary search the monotone path-loss model.
        let target = self.detector.sensitivity_dbm;
        let mut lo = 0.01;
        let mut hi = 1000.0;
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if self.received_power_dbm(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::units::feet_to_meters;
    use rand::SeedableRng;

    #[test]
    fn validation_and_power() {
        let s = DownlinkScenario::fig13_bench(15.0);
        assert!(s.validate().is_ok());
        assert!(s.received_power_dbm(1.0) > s.received_power_dbm(10.0));
    }

    #[test]
    fn close_range_is_error_free() {
        let s = DownlinkScenario::fig13_bench(15.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ber = s
            .bit_error_rate(feet_to_meters(5.0), 3, 32, &mut rng)
            .unwrap();
        assert_eq!(ber.ber(), 0.0, "5 ft downlink should be clean");
    }

    #[test]
    fn far_range_fails_once_below_sensitivity() {
        let s = DownlinkScenario::fig13_bench(15.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let range = s.sensitivity_range_m();
        let ber = s.bit_error_rate(range * 3.0, 2, 32, &mut rng).unwrap();
        assert!(ber.ber() > 0.3, "far-range BER {}", ber.ber());
    }

    #[test]
    fn sensitivity_range_is_tens_of_feet() {
        // Fig. 13 reports BER < 0.01 up to ~18 feet with the prototype's
        // -32 dBm detector; the analytic crossing should land in the
        // 10-40 foot range for a 15 dBm transmitter.
        let s = DownlinkScenario::fig13_bench(15.0);
        let range_ft = interscatter_dsp::units::meters_to_feet(s.sensitivity_range_m());
        assert!(
            (8.0..60.0).contains(&range_ft),
            "sensitivity range {range_ft} ft"
        );
    }

    #[test]
    fn random_seed_policy_breaks_the_downlink() {
        let mut s = DownlinkScenario::fig13_bench(15.0);
        s.seed_policy = SeedPolicy::Random;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let ber = s
            .bit_error_rate(feet_to_meters(5.0), 3, 32, &mut rng)
            .unwrap();
        assert!(
            ber.ber() > 0.2,
            "an unpredictable scrambler seed must break AM crafting (BER {})",
            ber.ber()
        );
    }

    #[test]
    fn incrementing_seed_policy_works_like_fixed() {
        let mut s = DownlinkScenario::fig13_bench(15.0);
        s.seed_policy = SeedPolicy::Incrementing { start: 40 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let ber = s
            .bit_error_rate(feet_to_meters(6.0), 3, 24, &mut rng)
            .unwrap();
        assert_eq!(ber.ber(), 0.0);
    }
}
