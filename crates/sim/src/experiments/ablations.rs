//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **Square-wave vs ideal quadrature** (§2.3.1 step 1): how much of the
//!   scattered power the square-wave approximation sacrifices to harmonics.
//! * **Guard interval** (§2.2): how large the tag's payload-start estimation
//!   error can be before backscatter overlaps the uncontrollable header or
//!   the CRC.
//! * **Shift-frequency choice** (§3): why 35.75 MHz — the generated packet
//!   must land inside Wi-Fi channel 11 while keeping the Bluetooth RF source
//!   outside the receiver's channel filter.
//! * **Downlink bit encoding** (§2.4): one OFDM symbol per bit versus the
//!   paper's two-symbol encoding, under envelope-detector reception.

use crate::SimError;
use interscatter_backscatter::ssb::{shift_tone, SsbConfig};
use interscatter_ble::channels::{wifi_channel_freq_hz, BleChannel};
use interscatter_dsp::iq::tone;
use interscatter_dsp::spectrum::{band_power_db, welch_psd, WelchConfig};

/// Result of the square-wave ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWaveAblation {
    /// Power in the wanted sideband with the square-wave (quantised) tag, dB.
    pub square_wave_db: f64,
    /// Power in the wanted sideband with an ideal complex-exponential
    /// reflection, dB.
    pub ideal_db: f64,
    /// The penalty paid by the practical design, dB.
    pub penalty_db: f64,
}

/// Runs the square-wave ablation at the prototype shift.
pub fn square_wave_ablation() -> Result<SquareWaveAblation, SimError> {
    let fs = 176e6;
    let shift = 35.75e6;
    let carrier = tone(0.0, fs, 1 << 15, 0.0);
    let welch = WelchConfig::default();

    let quantised = SsbConfig::new(fs, shift);
    let wave_q = shift_tone(&quantised, &carrier)?;
    let psd_q = welch_psd(&wave_q, fs, &welch)?;

    let ideal = SsbConfig {
        quantize_to_states: false,
        ..quantised
    };
    let wave_i = shift_tone(&ideal, &carrier)?;
    let psd_i = welch_psd(&wave_i, fs, &welch)?;

    let square_wave_db = band_power_db(&psd_q, shift - 1e6, shift + 1e6);
    let ideal_db = band_power_db(&psd_i, shift - 1e6, shift + 1e6);
    Ok(SquareWaveAblation {
        square_wave_db,
        ideal_db,
        penalty_db: ideal_db - square_wave_db,
    })
}

/// Result of the guard-interval ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardIntervalAblation {
    /// Guard interval evaluated, seconds.
    pub guard_s: f64,
    /// The largest 2 Mbps Wi-Fi PSDU (bytes) that still fits in the
    /// Bluetooth payload window once this guard interval is reserved at the
    /// front.
    pub max_psdu_bytes: Option<usize>,
    /// Whether any useful Wi-Fi packet still fits with this guard.
    pub packet_fits: bool,
}

/// Evaluates, for each candidate guard interval, how much of the 248 µs
/// Bluetooth payload window remains usable for the Wi-Fi packet.
pub fn guard_interval_ablation(guards_s: &[f64]) -> Vec<GuardIntervalAblation> {
    let window = interscatter_ble::timing::MAX_PAYLOAD_DURATION_S;
    guards_s
        .iter()
        .map(|&guard_s| {
            let max_psdu_bytes = interscatter_wifi::dot11b::rates::payload_fit_in_ble_window(
                interscatter_wifi::dot11b::DsssRate::Mbps2,
                window - guard_s,
            );
            GuardIntervalAblation {
                guard_s,
                max_psdu_bytes,
                packet_fits: max_psdu_bytes.is_some(),
            }
        })
        .collect()
}

/// Result of the shift-frequency ablation for one candidate shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftAblation {
    /// Candidate shift, Hz.
    pub shift_hz: f64,
    /// Offset of the generated packet's centre from Wi-Fi channel 11, Hz.
    pub offset_from_channel11_hz: f64,
    /// Whether the generated 22 MHz packet fits inside the ISM band.
    pub inside_ism_band: bool,
    /// Separation between the Bluetooth source and the edge of the Wi-Fi
    /// receiver's channel filter, Hz (larger = better source rejection).
    pub source_rejection_hz: f64,
}

/// Evaluates candidate shift frequencies from BLE channel 38.
pub fn shift_ablation(shifts_hz: &[f64]) -> Vec<ShiftAblation> {
    let ble = BleChannel::ADV_38.center_freq_hz();
    let wifi11 = wifi_channel_freq_hz(11);
    let ism_low = 2400e6;
    let ism_high = 2483.5e6;
    shifts_hz
        .iter()
        .map(|&shift_hz| {
            let packet_center = ble + shift_hz;
            let offset = packet_center - wifi11;
            let inside = packet_center - 11e6 >= ism_low && packet_center + 11e6 <= ism_high;
            // The Wi-Fi receiver filters ±11 MHz around its channel centre;
            // the Bluetooth source sits at `ble`.
            let source_rejection = (ble - wifi11).abs() - 11e6;
            ShiftAblation {
                shift_hz,
                offset_from_channel11_hz: offset,
                inside_ism_band: inside,
                source_rejection_hz: source_rejection,
            }
        })
        .collect()
}

/// Plain-text report combining the three static ablations.
pub fn report(
    square: &SquareWaveAblation,
    guards: &[GuardIntervalAblation],
    shifts: &[ShiftAblation],
) -> String {
    let mut out = String::from("Ablations\n\nSquare-wave SSB vs ideal quadrature:\n");
    out.push_str(&format!(
        "  wanted-sideband power: square wave {} dB, ideal {} dB, penalty {} dB\n",
        super::f1(square.square_wave_db),
        super::f1(square.ideal_db),
        super::f1(square.penalty_db)
    ));
    out.push_str("\nGuard interval vs usable 2 Mbps PSDU size:\n");
    for g in guards {
        out.push_str(&format!(
            "  guard {:>5} µs: max PSDU {} bytes, fits: {}\n",
            super::f1(g.guard_s * 1e6),
            g.max_psdu_bytes.map_or("-".to_string(), |b| b.to_string()),
            g.packet_fits
        ));
    }
    out.push_str("\nShift frequency from BLE channel 38:\n");
    for s in shifts {
        out.push_str(&format!(
            "  shift {:>6} MHz: offset from Wi-Fi 11 {:>6} MHz, in ISM band: {}\n",
            super::f1(s.shift_hz / 1e6),
            super::f1(s.offset_from_channel11_hz / 1e6),
            s.inside_ism_band
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_wave_penalty_is_about_one_db() {
        // The square-wave fundamental carries (4/π)²/2... relative to the
        // ideal exponential the measured penalty should be modest (≲ 2.5 dB)
        // — the reason the paper can afford the approximation.
        let result = square_wave_ablation().unwrap();
        assert!(result.penalty_db > 0.0, "square wave cannot beat the ideal");
        assert!(result.penalty_db < 2.5, "penalty {} dB", result.penalty_db);
    }

    #[test]
    fn guard_interval_tradeoff() {
        let rows = guard_interval_ablation(&[0.0, 4e-6, 20e-6, 200e-6]);
        assert_eq!(rows.len(), 4);
        // The paper's 4 µs guard costs only a byte of payload; a 200 µs
        // guard leaves no room for a useful packet at all.
        assert!(rows[0].packet_fits && rows[1].packet_fits);
        let full = rows[0].max_psdu_bytes.unwrap();
        let with_guard = rows[1].max_psdu_bytes.unwrap();
        assert!(
            full - with_guard <= 2,
            "4 µs guard should cost at most 2 bytes"
        );
        assert!(!rows[3].packet_fits);
        // Usable payload decreases monotonically with the guard.
        for w in rows.windows(2) {
            assert!(w[1].max_psdu_bytes.unwrap_or(0) <= w[0].max_psdu_bytes.unwrap_or(0));
        }
    }

    #[test]
    fn prototype_shift_lands_in_channel_11_inside_the_ism_band() {
        let rows = shift_ablation(&[22e6, 35.75e6, 36e6, 60e6]);
        let prototype = &rows[1];
        assert!(prototype.inside_ism_band);
        assert!(
            prototype.offset_from_channel11_hz.abs() < 1e6,
            "offset {}",
            prototype.offset_from_channel11_hz
        );
        // A 22 MHz shift leaves the packet far from channel 11.
        assert!(rows[0].offset_from_channel11_hz.abs() > 10e6);
        // A 60 MHz shift falls outside the ISM band.
        assert!(!rows[3].inside_ism_band);
        // The source rejection for channel 38 -> channel 11 is 25 MHz.
        assert!((prototype.source_rejection_hz - 25e6).abs() < 1.0);
        let text = report(
            &square_wave_ablation().unwrap(),
            &guard_interval_ablation(&[4e-6]),
            &rows,
        );
        assert!(text.contains("Square-wave"));
    }
}
