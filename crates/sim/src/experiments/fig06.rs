//! Figure 6: spectrum of single-sideband vs double-sideband backscatter.
//!
//! The paper backscatters a single tone with a 22 MHz shift and plots the
//! resulting spectrum for both modulator designs: the double-sideband
//! baseline shows a strong mirror image on the opposite side of the carrier,
//! the single-sideband design suppresses it. The reproduction measures the
//! power in the wanted sideband, the mirror sideband, and the residual at
//! the carrier for both designs.

use crate::SimError;
use interscatter_backscatter::{dsb, ssb};
use interscatter_dsp::iq::tone;
use interscatter_dsp::spectrum::{band_power_db, welch_psd, SpectrumPoint, WelchConfig};

/// Result of the Fig. 6 experiment for one modulator design.
#[derive(Debug, Clone)]
pub struct SidebandSpectrum {
    /// Modulator name ("single-sideband" / "double-sideband").
    pub design: &'static str,
    /// Power in the wanted (+Δf) sideband, dB.
    pub wanted_db: f64,
    /// Power in the mirror (−Δf) sideband, dB.
    pub mirror_db: f64,
    /// Mirror-image suppression (wanted − mirror), dB.
    pub suppression_db: f64,
    /// The full PSD, for plotting.
    pub psd: Vec<SpectrumPoint>,
}

/// Parameters of the Fig. 6 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig06Params {
    /// Frequency shift applied by the tag, Hz (22 MHz in the paper's plot).
    pub shift_hz: f64,
    /// Simulation sample rate, Hz.
    pub sample_rate: f64,
    /// Number of samples of carrier to backscatter.
    pub num_samples: usize,
}

impl Default for Fig06Params {
    fn default() -> Self {
        Fig06Params {
            shift_hz: 22e6,
            sample_rate: 176e6,
            num_samples: 1 << 16,
        }
    }
}

/// Runs the experiment, returning `[single-sideband, double-sideband]`.
pub fn run(params: &Fig06Params) -> Result<[SidebandSpectrum; 2], SimError> {
    let carrier = tone(0.0, params.sample_rate, params.num_samples, 0.0);
    let welch = WelchConfig::default();

    let ssb_cfg = ssb::SsbConfig::new(params.sample_rate, params.shift_hz);
    let ssb_wave = ssb::shift_tone(&ssb_cfg, &carrier)?;
    let ssb_psd = welch_psd(&ssb_wave, params.sample_rate, &welch)?;

    let dsb_cfg = dsb::DsbConfig::new(params.sample_rate, params.shift_hz);
    let dsb_wave = dsb::shift_tone(&dsb_cfg, &carrier)?;
    let dsb_psd = welch_psd(&dsb_wave, params.sample_rate, &welch)?;

    let band = 1e6;
    let measure = |design: &'static str, psd: Vec<SpectrumPoint>| {
        let wanted = band_power_db(&psd, params.shift_hz - band, params.shift_hz + band);
        let mirror = band_power_db(&psd, -params.shift_hz - band, -params.shift_hz + band);
        SidebandSpectrum {
            design,
            wanted_db: wanted,
            mirror_db: mirror,
            suppression_db: wanted - mirror,
            psd,
        }
    };
    Ok([
        measure("single-sideband", ssb_psd),
        measure("double-sideband", dsb_psd),
    ])
}

/// Plain-text report of the experiment.
pub fn report(results: &[SidebandSpectrum; 2]) -> String {
    let mut out = String::from("Fig. 6 — sideband spectra (22 MHz shift)\n");
    out.push_str("design            wanted(dB)  mirror(dB)  suppression(dB)\n");
    for r in results {
        out.push_str(&format!(
            "{:<17} {:>10} {:>11} {:>16}\n",
            r.design,
            super::f1(r.wanted_db),
            super::f1(r.mirror_db),
            super::f1(r.suppression_db)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssb_suppresses_the_mirror_and_dsb_does_not() {
        let params = Fig06Params {
            num_samples: 1 << 14,
            ..Default::default()
        };
        let [ssb, dsb] = run(&params).unwrap();
        assert!(
            ssb.suppression_db > 15.0,
            "SSB suppression {}",
            ssb.suppression_db
        );
        assert!(
            dsb.suppression_db.abs() < 1.0,
            "DSB should be symmetric: {}",
            dsb.suppression_db
        );
        // SSB puts more power in the wanted sideband than DSB does.
        assert!(ssb.wanted_db > dsb.wanted_db + 2.0);
        let text = report(&[ssb, dsb]);
        assert!(text.contains("single-sideband") && text.contains("double-sideband"));
    }
}
