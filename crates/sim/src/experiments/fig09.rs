//! Figure 9: creating a single tone from commodity Bluetooth devices.
//!
//! The paper measures the spectrum of three BLE transmitters (TI CC2650,
//! Galaxy S5 phone, Moto 360 watch) sending (a) ordinary random application
//! data and (b) the crafted single-tone payload of §2.2. The reproduction
//! measures the occupied bandwidth and tone purity of both payloads on each
//! device profile.

use crate::SimError;
use interscatter_ble::channels::BleChannel;
use interscatter_ble::device::BleDeviceProfile;
use interscatter_ble::gfsk::GfskConfig;
use interscatter_ble::packet::AdvertisingPacket;
use interscatter_ble::single_tone::{single_tone_packet, tone_quality, TonePolarity};
use interscatter_dsp::spectrum::{occupied_bandwidth, welch_psd, WelchConfig};
use rand::{Rng, SeedableRng};

/// Result for one device and one payload type.
#[derive(Debug, Clone)]
pub struct ToneRow {
    /// Device name.
    pub device: &'static str,
    /// Payload kind ("random" / "single-tone").
    pub payload: &'static str,
    /// 99 % occupied bandwidth of the payload section, Hz.
    pub occupied_bw_hz: f64,
    /// Standard deviation of the instantaneous frequency over the payload,
    /// Hz.
    pub freq_std_hz: f64,
    /// Tone purity score in [0, 1].
    pub purity: f64,
}

/// Runs the Fig. 9 experiment on all three device profiles.
pub fn run(seed: u64) -> Result<Vec<ToneRow>, SimError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let cfg = GfskConfig::default();
    let channel = BleChannel::ADV_38;
    let addr = [0x1A, 0x2B, 0x3C, 0x4D, 0x5E, 0x6F];
    let mut rows = Vec::new();
    for device in BleDeviceProfile::fig9_devices() {
        for payload_kind in ["random", "single-tone"] {
            let packet = if payload_kind == "random" {
                let data: Vec<u8> = (0..31).map(|_| rng.gen()).collect();
                AdvertisingPacket::new(addr, &data)?
            } else {
                single_tone_packet(channel, addr, 31, TonePolarity::High)?
            };
            let bits = packet.to_air_bits(channel)?;
            let wave = device.transmit(&bits, cfg, &mut rng)?;
            let spb = cfg.samples_per_bit();
            let start = AdvertisingPacket::payload_bit_offset() * spb;
            let end = packet.crc_bit_offset() * spb;
            let payload_wave = &wave[start..end];
            let quality = tone_quality(payload_wave, cfg.sample_rate);
            let psd = welch_psd(
                payload_wave,
                cfg.sample_rate,
                &WelchConfig {
                    nfft: 1024,
                    ..Default::default()
                },
            )?;
            rows.push(ToneRow {
                device: device.name,
                payload: payload_kind,
                occupied_bw_hz: occupied_bandwidth(&psd, 0.99),
                freq_std_hz: quality.frequency_std_hz,
                purity: quality.purity,
            });
        }
    }
    Ok(rows)
}

/// Plain-text report.
pub fn report(rows: &[ToneRow]) -> String {
    let mut out = String::from("Fig. 9 — BLE single tone vs random advertisement\n");
    out.push_str("device               payload       occ.BW(kHz)  freq.std(kHz)  purity\n");
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:<13} {:>11} {:>14} {:>7}\n",
            r.device,
            r.payload,
            super::f1(r.occupied_bw_hz / 1e3),
            super::f1(r.freq_std_hz / 1e3),
            super::f3(r.purity)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tone_is_narrower_and_purer_on_every_device() {
        let rows = run(7).unwrap();
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks(2) {
            let random = &pair[0];
            let tone = &pair[1];
            assert_eq!(random.payload, "random");
            assert_eq!(tone.payload, "single-tone");
            assert_eq!(random.device, tone.device);
            assert!(
                tone.occupied_bw_hz < random.occupied_bw_hz,
                "{}: tone BW {} vs random {}",
                tone.device,
                tone.occupied_bw_hz,
                random.occupied_bw_hz
            );
            assert!(tone.purity > 0.9, "{} purity {}", tone.device, tone.purity);
            assert!(tone.freq_std_hz < random.freq_std_hz / 2.0);
        }
        let text = report(&rows);
        assert!(text.contains("TI CC2650") && text.contains("Moto 360"));
    }
}
