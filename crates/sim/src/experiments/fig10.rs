//! Figure 10: Wi-Fi RSSI versus distance between the backscatter device and
//! the Wi-Fi receiver, for Bluetooth transmit powers of 0, 4, 10 and 20 dBm
//! and for Bluetooth-to-tag distances of 1 and 3 feet.

use crate::uplink::UplinkScenario;
use crate::SimError;
use interscatter_ble::device::FIG10_TX_POWERS_DBM;

/// One point of the Fig. 10 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssiPoint {
    /// Bluetooth transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Bluetooth-to-tag distance, feet.
    pub source_to_tag_ft: f64,
    /// Tag-to-receiver distance, feet.
    pub tag_to_rx_ft: f64,
    /// Median Wi-Fi RSSI reported by the receiver, dBm.
    pub rssi_dbm: f64,
    /// Whether the RSSI is above the Wi-Fi card's −92 dBm DSSS sensitivity,
    /// i.e. whether packets are reported at all at this distance.
    pub detectable: bool,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Fig10Params {
    /// Receiver distances to sweep, feet.
    pub rx_distances_ft: Vec<f64>,
    /// Bluetooth-to-tag distances, feet (1 and 3 in the paper).
    pub source_to_tag_ft: Vec<f64>,
    /// Transmit powers, dBm.
    pub tx_powers_dbm: Vec<f64>,
}

impl Default for Fig10Params {
    fn default() -> Self {
        Fig10Params {
            rx_distances_ft: (1..=18).map(|i| i as f64 * 5.0).collect(),
            source_to_tag_ft: vec![1.0, 3.0],
            tx_powers_dbm: FIG10_TX_POWERS_DBM.to_vec(),
        }
    }
}

/// Wi-Fi DSSS receive sensitivity used for the "detectable" flag, dBm.
pub const WIFI_SENSITIVITY_DBM: f64 = -92.0;

/// Runs the Fig. 10 sweep.
pub fn run(params: &Fig10Params) -> Result<Vec<RssiPoint>, SimError> {
    let mut rows = Vec::new();
    for &d_tag in &params.source_to_tag_ft {
        for &power in &params.tx_powers_dbm {
            for &d_rx in &params.rx_distances_ft {
                let scenario = UplinkScenario::fig10_bench(power, d_tag, d_rx);
                scenario.validate()?;
                let rssi = scenario.rssi_dbm();
                rows.push(RssiPoint {
                    tx_power_dbm: power,
                    source_to_tag_ft: d_tag,
                    tag_to_rx_ft: d_rx,
                    rssi_dbm: rssi,
                    detectable: rssi >= WIFI_SENSITIVITY_DBM,
                });
            }
        }
    }
    Ok(rows)
}

/// Maximum detectable range (feet) for a given power / tag distance in a set
/// of sweep results.
pub fn max_range_ft(rows: &[RssiPoint], tx_power_dbm: f64, source_to_tag_ft: f64) -> f64 {
    rows.iter()
        .filter(|r| {
            r.tx_power_dbm == tx_power_dbm && r.source_to_tag_ft == source_to_tag_ft && r.detectable
        })
        .map(|r| r.tag_to_rx_ft)
        .fold(0.0, f64::max)
}

/// Plain-text report (one table per tag distance).
pub fn report(rows: &[RssiPoint]) -> String {
    let mut out = String::from("Fig. 10 — Wi-Fi RSSI vs distance\n");
    let mut tag_distances: Vec<f64> = rows.iter().map(|r| r.source_to_tag_ft).collect();
    tag_distances.sort_by(|a, b| a.partial_cmp(b).unwrap());
    tag_distances.dedup();
    for d_tag in tag_distances {
        out.push_str(&format!("\nBluetooth-to-tag distance: {d_tag} ft\n"));
        out.push_str("rx distance (ft)  0 dBm    4 dBm    10 dBm   20 dBm\n");
        let mut rx_distances: Vec<f64> = rows
            .iter()
            .filter(|r| r.source_to_tag_ft == d_tag)
            .map(|r| r.tag_to_rx_ft)
            .collect();
        rx_distances.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rx_distances.dedup();
        for d_rx in rx_distances {
            let mut line = format!("{d_rx:>16}");
            for power in FIG10_TX_POWERS_DBM {
                let point = rows.iter().find(|r| {
                    r.source_to_tag_ft == d_tag && r.tag_to_rx_ft == d_rx && r.tx_power_dbm == power
                });
                match point {
                    Some(p) if p.detectable => {
                        line.push_str(&format!("  {:>7}", super::f1(p.rssi_dbm)))
                    }
                    _ => line.push_str("        -"),
                }
            }
            line.push('\n');
            out.push_str(&line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reproduces_fig10_shape() {
        let rows = run(&Fig10Params::default()).unwrap();
        // 2 tag distances × 4 powers × 18 rx distances.
        assert_eq!(rows.len(), 2 * 4 * 18);

        // Higher power ⇒ longer detectable range; 20 dBm reaches ~90 ft.
        let range_0 = max_range_ft(&rows, 0.0, 1.0);
        let range_20 = max_range_ft(&rows, 20.0, 1.0);
        assert!(
            range_20 > range_0,
            "range at 20 dBm {range_20} vs 0 dBm {range_0}"
        );
        assert!(range_20 >= 85.0, "20 dBm range {range_20} ft");

        // Larger Bluetooth-to-tag distance ⇒ lower RSSI at the same point.
        let near_tag = rows
            .iter()
            .find(|r| r.source_to_tag_ft == 1.0 && r.tx_power_dbm == 10.0 && r.tag_to_rx_ft == 30.0)
            .unwrap();
        let far_tag = rows
            .iter()
            .find(|r| r.source_to_tag_ft == 3.0 && r.tx_power_dbm == 10.0 && r.tag_to_rx_ft == 30.0)
            .unwrap();
        assert!(near_tag.rssi_dbm > far_tag.rssi_dbm + 5.0);

        // RSSI decreases monotonically with receiver distance.
        let series: Vec<&RssiPoint> = rows
            .iter()
            .filter(|r| r.source_to_tag_ft == 1.0 && r.tx_power_dbm == 4.0)
            .collect();
        for w in series.windows(2) {
            assert!(w[1].rssi_dbm <= w[0].rssi_dbm);
        }

        let text = report(&rows);
        assert!(text.contains("Bluetooth-to-tag distance: 1 ft"));
        assert!(text.contains("Bluetooth-to-tag distance: 3 ft"));
    }
}
