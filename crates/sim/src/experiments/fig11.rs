//! Figure 11: CDF of the Wi-Fi packet error rate for backscatter-generated
//! 2 Mbps and 11 Mbps packets.
//!
//! The paper transmits loops of 200 sequence-numbered packets at each of the
//! RSSI operating points observed in the range experiments and plots the CDF
//! of the resulting per-location packet error rates. The reproduction sweeps
//! the same RSSI span (strong links near the tag down to links at the
//! sensitivity limit), runs waveform-level packet trials at each point, and
//! builds the same CDF. The paper's two key observations should hold: the 2
//! and 11 Mbps curves are similar (both payloads are small and share the
//! same preamble/header rate), and the worst locations see PERs above 30 %.

use crate::measurements::Cdf;
use crate::uplink::UplinkScenario;
use crate::SimError;
use interscatter_backscatter::tag::TargetPhy;
use interscatter_wifi::dot11b::DsssRate;
use rand::{Rng, SeedableRng};

/// One per-location PER measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerPoint {
    /// PSDU rate.
    pub rate: DsssRate,
    /// Link RSSI at this location, dBm.
    pub rssi_dbm: f64,
    /// Measured packet error rate in [0, 1].
    pub per: f64,
}

/// Parameters of the Fig. 11 experiment.
#[derive(Debug, Clone)]
pub struct Fig11Params {
    /// Number of locations (RSSI operating points) per rate.
    pub locations: usize,
    /// Packets per location (200 in the paper).
    pub packets_per_location: usize,
    /// RSSI range swept, dBm (from strong links down to the sensitivity
    /// limit).
    pub rssi_range_dbm: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig11Params {
    fn default() -> Self {
        Fig11Params {
            locations: 12,
            packets_per_location: 40,
            rssi_range_dbm: (-97.0, -55.0),
            seed: 0x11,
        }
    }
}

/// Runs the experiment for both rates, returning the per-location points.
pub fn run(params: &Fig11Params) -> Result<Vec<PerPoint>, SimError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let mut points = Vec::new();
    for (rate, payload_len) in [(DsssRate::Mbps2, 31usize), (DsssRate::Mbps11, 77usize)] {
        for loc in 0..params.locations {
            // Spread the locations across the RSSI span, with a small random
            // perturbation standing in for multipath variation.
            let span = params.rssi_range_dbm.1 - params.rssi_range_dbm.0;
            let rssi = params.rssi_range_dbm.0
                + span * loc as f64 / (params.locations - 1).max(1) as f64
                + rng.gen_range(-1.0..1.0);
            let mut scenario = UplinkScenario::fig10_bench(4.0, 1.0, 10.0);
            scenario.target = TargetPhy::Wifi(rate);
            let mut errors = 0usize;
            for p in 0..params.packets_per_location {
                let payload: Vec<u8> = (0..payload_len)
                    .map(|i| ((i * 7 + p + loc) % 251) as u8)
                    .collect();
                let (ok, _, _) = scenario.simulate_wifi_packet(&payload, rssi, &mut rng)?;
                if !ok {
                    errors += 1;
                }
            }
            points.push(PerPoint {
                rate,
                rssi_dbm: rssi,
                per: errors as f64 / params.packets_per_location as f64,
            });
        }
    }
    Ok(points)
}

/// Builds the CDF of PER values for one rate.
pub fn per_cdf(points: &[PerPoint], rate: DsssRate) -> Cdf {
    Cdf::from_samples(points.iter().filter(|p| p.rate == rate).map(|p| p.per))
}

/// Plain-text report: the PER CDF at a few quantiles for both rates.
pub fn report(points: &[PerPoint]) -> String {
    let mut out = String::from("Fig. 11 — Wi-Fi packet error rate CDF\n");
    out.push_str("rate      median PER  75th pct  90th pct  max\n");
    for rate in [DsssRate::Mbps2, DsssRate::Mbps11] {
        let cdf = per_cdf(points, rate);
        out.push_str(&format!(
            "{:<9} {:>10} {:>9} {:>9} {:>5}\n",
            format!("{rate:?}"),
            super::f3(cdf.median().unwrap_or(0.0)),
            super::f3(cdf.quantile(0.75).unwrap_or(0.0)),
            super::f3(cdf.quantile(0.9).unwrap_or(0.0)),
            super::f3(cdf.range().map(|r| r.1).unwrap_or(0.0)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cdf_matches_the_papers_observations() {
        let params = Fig11Params {
            locations: 6,
            packets_per_location: 10,
            ..Default::default()
        };
        let points = run(&params).unwrap();
        assert_eq!(points.len(), 2 * 6);
        let cdf2 = per_cdf(&points, DsssRate::Mbps2);
        let cdf11 = per_cdf(&points, DsssRate::Mbps11);
        assert_eq!(cdf2.len(), 6);
        assert_eq!(cdf11.len(), 6);
        // Strong locations deliver everything; the weakest locations lose
        // more than 30 % of packets (paper: PER > 30 % at low RSSI).
        assert!(cdf2.quantile(0.0).unwrap() < 0.05);
        assert!(cdf2.range().unwrap().1 > 0.3);
        assert!(cdf11.range().unwrap().1 > 0.3);
        // The two rates behave similarly: medians within 0.25 of each other.
        let delta = (cdf2.median().unwrap() - cdf11.median().unwrap()).abs();
        assert!(delta < 0.25, "median PER difference {delta}");
        // PER is non-increasing as RSSI improves (check the 2 Mbps series).
        let mut two: Vec<&PerPoint> = points
            .iter()
            .filter(|p| p.rate == DsssRate::Mbps2)
            .collect();
        two.sort_by(|a, b| a.rssi_dbm.partial_cmp(&b.rssi_dbm).unwrap());
        assert!(two.first().unwrap().per >= two.last().unwrap().per);
        let text = report(&points);
        assert!(text.contains("Mbps2") && text.contains("Mbps11"));
    }
}
