//! Figure 12: effect of backscatter on a concurrent Wi-Fi flow.
//!
//! An iperf TCP flow runs between an AP and a phone on Wi-Fi channel 6 while
//! the backscatter device generates 2 Mbps packets at 50, 650 and 1000
//! packets/s. Three configurations are compared: no backscatter (baseline),
//! the single-sideband interscatter design, and the double-sideband
//! baseline whose mirror copy lands in channel 6.

use crate::mac::{simulate_coexistence, CoexistenceConfig, InterferenceMode};
use crate::SimError;
use rand::SeedableRng;

/// One bar of the Fig. 12 chart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Backscatter packet rate, packets per second.
    pub backscatter_rate_pps: f64,
    /// Interference configuration.
    pub mode: InterferenceMode,
    /// Achieved iperf throughput, Mbps.
    pub throughput_mbps: f64,
    /// Fraction of Wi-Fi frames that collided.
    pub collision_fraction: f64,
}

/// Parameters of the experiment.
#[derive(Debug, Clone)]
pub struct Fig12Params {
    /// Backscatter rates to evaluate (50/650/1000 in the paper).
    pub rates_pps: Vec<f64>,
    /// Simulated flow duration per point, seconds.
    pub duration_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig12Params {
    fn default() -> Self {
        Fig12Params {
            rates_pps: vec![50.0, 650.0, 1000.0],
            duration_s: 2.0,
            seed: 0x12,
        }
    }
}

/// Runs the experiment. The baseline (no backscatter) is included once with
/// `backscatter_rate_pps = 0`.
pub fn run(params: &Fig12Params) -> Result<Vec<ThroughputPoint>, SimError> {
    let config = CoexistenceConfig::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let mut rows = Vec::new();
    let baseline = simulate_coexistence(
        &config,
        InterferenceMode::None,
        0.0,
        params.duration_s,
        &mut rng,
    );
    rows.push(ThroughputPoint {
        backscatter_rate_pps: 0.0,
        mode: InterferenceMode::None,
        throughput_mbps: baseline.throughput_mbps,
        collision_fraction: baseline.collision_fraction,
    });
    for &rate in &params.rates_pps {
        for mode in [
            InterferenceMode::SingleSideband,
            InterferenceMode::DoubleSideband,
        ] {
            let r = simulate_coexistence(&config, mode, rate, params.duration_s, &mut rng);
            rows.push(ThroughputPoint {
                backscatter_rate_pps: rate,
                mode,
                throughput_mbps: r.throughput_mbps,
                collision_fraction: r.collision_fraction,
            });
        }
    }
    Ok(rows)
}

/// Plain-text report.
pub fn report(rows: &[ThroughputPoint]) -> String {
    let mut out = String::from("Fig. 12 — iperf throughput vs backscatter rate\n");
    out.push_str("rate(pkts/s)  configuration      throughput(Mbps)  collisions\n");
    for r in rows {
        let mode = match r.mode {
            InterferenceMode::None => "baseline",
            InterferenceMode::SingleSideband => "single-sideband",
            InterferenceMode::DoubleSideband => "double-sideband",
        };
        out.push_str(&format!(
            "{:>12}  {:<18} {:>16} {:>11}\n",
            r.backscatter_rate_pps,
            mode,
            super::f1(r.throughput_mbps),
            super::f3(r.collision_fraction)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_shape() {
        let params = Fig12Params {
            duration_s: 1.0,
            ..Default::default()
        };
        let rows = run(&params).unwrap();
        assert_eq!(rows.len(), 1 + 3 * 2);
        let baseline = rows[0].throughput_mbps;
        assert!(baseline > 15.0);

        let get = |rate: f64, mode: InterferenceMode| {
            rows.iter()
                .find(|r| r.backscatter_rate_pps == rate && r.mode == mode)
                .unwrap()
                .throughput_mbps
        };
        // Single-sideband never hurts the flow.
        for rate in [50.0, 650.0, 1000.0] {
            assert!((get(rate, InterferenceMode::SingleSideband) - baseline).abs() < 1.0);
        }
        // Double-sideband at 50 pps is negligible, at 650/1000 pps it is not.
        assert!(get(50.0, InterferenceMode::DoubleSideband) > 0.85 * baseline);
        assert!(get(650.0, InterferenceMode::DoubleSideband) < 0.8 * baseline);
        assert!(
            get(1000.0, InterferenceMode::DoubleSideband)
                <= get(650.0, InterferenceMode::DoubleSideband) + 1.0
        );

        let text = report(&rows);
        assert!(text.contains("baseline") && text.contains("double-sideband"));
    }
}
