//! Figure 13: bit error rate of the OFDM-AM downlink versus the distance
//! between the 802.11g transmitter and the tag's peak-detector receiver.
//!
//! The paper reports BER below 0.01 up to roughly 18 feet with a −32 dBm
//! detector; beyond the sensitivity range the BER collapses rapidly. The
//! reproduction sweeps the transmitter-to-tag distance and runs crafted AM
//! frames through the envelope detector at each point.

use crate::downlink::DownlinkScenario;
use crate::SimError;
use interscatter_dsp::units::feet_to_meters;
use rand::SeedableRng;

/// One point of the Fig. 13 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownlinkBerPoint {
    /// Transmitter-to-detector distance, feet.
    pub distance_ft: f64,
    /// Received power at the detector, dBm.
    pub received_dbm: f64,
    /// Measured bit error rate in [0, 1].
    pub ber: f64,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Fig13Params {
    /// Distances to sweep, feet.
    pub distances_ft: Vec<f64>,
    /// Wi-Fi transmit power, dBm.
    pub wifi_tx_power_dbm: f64,
    /// AM frames per distance.
    pub frames: usize,
    /// Downlink bits per frame.
    pub bits_per_frame: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig13Params {
    fn default() -> Self {
        Fig13Params {
            distances_ft: vec![2.0, 5.0, 8.0, 11.0, 14.0, 17.0, 20.0, 24.0, 28.0, 34.0],
            wifi_tx_power_dbm: 20.0,
            frames: 3,
            bits_per_frame: 32,
            seed: 0x13,
        }
    }
}

/// Runs the sweep.
pub fn run(params: &Fig13Params) -> Result<Vec<DownlinkBerPoint>, SimError> {
    let scenario = DownlinkScenario::fig13_bench(params.wifi_tx_power_dbm);
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let mut rows = Vec::new();
    for &d_ft in &params.distances_ft {
        let d_m = feet_to_meters(d_ft);
        let counter =
            scenario.bit_error_rate(d_m, params.frames, params.bits_per_frame, &mut rng)?;
        rows.push(DownlinkBerPoint {
            distance_ft: d_ft,
            received_dbm: scenario.received_power_dbm(d_m),
            ber: counter.ber(),
        });
    }
    Ok(rows)
}

/// Plain-text report.
pub fn report(rows: &[DownlinkBerPoint]) -> String {
    let mut out = String::from("Fig. 13 — downlink BER vs distance (802.11g AM → peak detector)\n");
    out.push_str("distance(ft)  rx power(dBm)  BER\n");
    for r in rows {
        out.push_str(&format!(
            "{:>12} {:>14} {:>7}\n",
            r.distance_ft,
            super::f1(r.received_dbm),
            super::f3(r.ber)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_is_low_in_range_and_high_beyond() {
        let params = Fig13Params {
            distances_ft: vec![5.0, 15.0, 60.0],
            frames: 2,
            bits_per_frame: 24,
            ..Default::default()
        };
        let rows = run(&params).unwrap();
        assert_eq!(rows.len(), 3);
        // Within the paper's working range: (near-)error-free.
        assert!(rows[0].ber < 0.05, "5 ft BER {}", rows[0].ber);
        assert!(rows[1].ber < 0.1, "15 ft BER {}", rows[1].ber);
        // Far beyond the sensitivity range: the link collapses.
        assert!(rows[2].ber > 0.3, "60 ft BER {}", rows[2].ber);
        // Received power decreases with distance.
        assert!(rows[0].received_dbm > rows[1].received_dbm);
        assert!(rows[1].received_dbm > rows[2].received_dbm);
        let text = report(&rows);
        assert!(text.contains("BER"));
    }
}
