//! Figure 14: CDF of the RSSI of backscatter-generated ZigBee packets.
//!
//! The paper places the tag two feet from the Bluetooth source and a TI
//! CC2531 ZigBee receiver at five locations up to 15 feet away, then plots
//! the CDF of the per-packet RSSI values. The reproduction sweeps the same
//! five locations with shadowing, also verifying that the packets decode at
//! the reported RSSI levels.

use crate::measurements::Cdf;
use crate::uplink::UplinkScenario;
use crate::SimError;
use rand::SeedableRng;

/// One ZigBee location measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZigbeeRssiPoint {
    /// Tag-to-receiver distance, feet.
    pub distance_ft: f64,
    /// Median RSSI, dBm.
    pub rssi_dbm: f64,
    /// Fraction of trial packets decoded correctly at this location.
    pub delivery_ratio: f64,
}

/// Parameters of the Fig. 14 experiment.
#[derive(Debug, Clone)]
pub struct Fig14Params {
    /// Receiver locations, feet from the tag (five locations up to 15 ft in
    /// the paper).
    pub distances_ft: Vec<f64>,
    /// Packets per location for the delivery-ratio check.
    pub packets_per_location: usize,
    /// RSSI samples per location for the CDF (with shadowing).
    pub rssi_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig14Params {
    fn default() -> Self {
        Fig14Params {
            distances_ft: vec![3.0, 6.0, 9.0, 12.0, 15.0],
            packets_per_location: 5,
            rssi_samples: 40,
            seed: 0x14,
        }
    }
}

/// Runs the experiment, returning the per-location rows and the pooled RSSI
/// CDF.
pub fn run(params: &Fig14Params) -> Result<(Vec<ZigbeeRssiPoint>, Cdf), SimError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let mut rows = Vec::new();
    let mut cdf = Cdf::new();
    for &d in &params.distances_ft {
        let scenario = UplinkScenario::fig14_zigbee(d);
        scenario.validate()?;
        let rssi = scenario.rssi_dbm();
        for _ in 0..params.rssi_samples {
            cdf.push(scenario.rssi_shadowed_dbm(&mut rng));
        }
        let mut delivered = 0usize;
        for p in 0..params.packets_per_location {
            let payload: Vec<u8> = (0..20).map(|i| ((i + p) % 251) as u8).collect();
            let (ok, _) = scenario.simulate_zigbee_packet(&payload, rssi, &mut rng)?;
            if ok {
                delivered += 1;
            }
        }
        rows.push(ZigbeeRssiPoint {
            distance_ft: d,
            rssi_dbm: rssi,
            delivery_ratio: delivered as f64 / params.packets_per_location as f64,
        });
    }
    Ok((rows, cdf))
}

/// Plain-text report.
pub fn report(rows: &[ZigbeeRssiPoint], cdf: &Cdf) -> String {
    let mut out = String::from("Fig. 14 — ZigBee RSSI at five locations\n");
    out.push_str("distance(ft)  RSSI(dBm)  delivery\n");
    for r in rows {
        out.push_str(&format!(
            "{:>12} {:>10} {:>9}\n",
            r.distance_ft,
            super::f1(r.rssi_dbm),
            super::f3(r.delivery_ratio)
        ));
    }
    if let (Some(med), Some((lo, hi))) = (cdf.median(), cdf.range()) {
        out.push_str(&format!(
            "RSSI CDF: min {} dBm, median {} dBm, max {} dBm over {} samples\n",
            super::f1(lo),
            super::f1(med),
            super::f1(hi),
            cdf.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigbee_rssi_cdf_shape() {
        let params = Fig14Params {
            packets_per_location: 2,
            rssi_samples: 10,
            ..Default::default()
        };
        let (rows, cdf) = run(&params).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(cdf.len(), 50);
        // RSSI decreases with distance; all locations are within the CC2531's
        // sensitivity so the packets deliver.
        for w in rows.windows(2) {
            assert!(w[1].rssi_dbm < w[0].rssi_dbm);
        }
        for r in &rows {
            assert!(
                r.rssi_dbm > -97.0,
                "{} ft below ZigBee sensitivity",
                r.distance_ft
            );
            assert!(
                r.delivery_ratio > 0.99,
                "{} ft delivery {}",
                r.distance_ft,
                r.delivery_ratio
            );
        }
        // The paper's CDF spans roughly -90..-55 dBm; ours should cover a
        // similar span of tens of dB.
        let (lo, hi) = cdf.range().unwrap();
        assert!(hi - lo > 15.0, "RSSI span {} dB", hi - lo);
        assert!((-100.0..=-40.0).contains(&lo) && (-80.0..=-30.0).contains(&hi));
        let text = report(&rows, &cdf);
        assert!(text.contains("delivery"));
    }
}
