//! Figure 15: Wi-Fi RSSI with the smart contact-lens antenna prototype.
//!
//! The lens loop antenna sits in contact-lens solution with the Bluetooth
//! source 12 inches away; the Wi-Fi receiver distance is swept in inches and
//! the RSSI recorded for 10 and 20 dBm Bluetooth transmit powers. The paper
//! observes ranges beyond 24 inches and RSSI values in the −74…−86 dBm
//! range — far shorter than the bench results of Fig. 10 because of the tiny
//! detuned antenna immersed in liquid.

use crate::applications::contact_lens_scenario;
use crate::SimError;

/// One point of the Fig. 15 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LensRssiPoint {
    /// Bluetooth transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Lens-to-receiver distance, inches.
    pub distance_in: f64,
    /// Median Wi-Fi RSSI, dBm.
    pub rssi_dbm: f64,
    /// Whether the RSSI exceeds the Wi-Fi receiver sensitivity.
    pub detectable: bool,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Fig15Params {
    /// Receiver distances, inches.
    pub distances_in: Vec<f64>,
    /// Bluetooth powers, dBm (10 and 20 in the paper).
    pub tx_powers_dbm: Vec<f64>,
}

impl Default for Fig15Params {
    fn default() -> Self {
        Fig15Params {
            distances_in: vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0],
            tx_powers_dbm: vec![10.0, 20.0],
        }
    }
}

/// Wi-Fi sensitivity used for the detectability flag, dBm.
pub const WIFI_SENSITIVITY_DBM: f64 = -92.0;

/// Runs the sweep.
pub fn run(params: &Fig15Params) -> Result<Vec<LensRssiPoint>, SimError> {
    let mut rows = Vec::new();
    for &power in &params.tx_powers_dbm {
        for &d in &params.distances_in {
            let scenario = contact_lens_scenario(power, d);
            scenario.validate()?;
            let rssi = scenario.rssi_dbm();
            rows.push(LensRssiPoint {
                tx_power_dbm: power,
                distance_in: d,
                rssi_dbm: rssi,
                detectable: rssi >= WIFI_SENSITIVITY_DBM,
            });
        }
    }
    Ok(rows)
}

/// Plain-text report.
pub fn report(rows: &[LensRssiPoint]) -> String {
    let mut out = String::from("Fig. 15 — contact-lens prototype Wi-Fi RSSI vs distance\n");
    out.push_str("distance(in)  10 dBm   20 dBm\n");
    let mut distances: Vec<f64> = rows.iter().map(|r| r.distance_in).collect();
    distances.sort_by(|a, b| a.partial_cmp(b).unwrap());
    distances.dedup();
    for d in distances {
        let mut line = format!("{d:>12}");
        for power in [10.0, 20.0] {
            match rows
                .iter()
                .find(|r| r.distance_in == d && r.tx_power_dbm == power)
            {
                Some(p) if p.detectable => {
                    line.push_str(&format!("  {:>7}", super::f1(p.rssi_dbm)))
                }
                _ => line.push_str("        -"),
            }
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lens_sweep_shape() {
        let rows = run(&Fig15Params::default()).unwrap();
        assert_eq!(rows.len(), 2 * 8);
        // Detectable beyond 24 inches at both powers (the paper's headline).
        for power in [10.0, 20.0] {
            let max_detectable = rows
                .iter()
                .filter(|r| r.tx_power_dbm == power && r.detectable)
                .map(|r| r.distance_in)
                .fold(0.0, f64::max);
            assert!(
                max_detectable >= 24.0,
                "{power} dBm range {max_detectable} in"
            );
        }
        // 20 dBm is exactly 10 dB stronger than 10 dBm at every distance.
        for d in [5.0, 25.0, 40.0] {
            let p10 = rows
                .iter()
                .find(|r| r.distance_in == d && r.tx_power_dbm == 10.0)
                .unwrap();
            let p20 = rows
                .iter()
                .find(|r| r.distance_in == d && r.tx_power_dbm == 20.0)
                .unwrap();
            assert!((p20.rssi_dbm - p10.rssi_dbm - 10.0).abs() < 1e-9);
        }
        // The RSSI values are tens of dB lower than the bench setup at
        // comparable (converted) distances — the cost of the lens antenna.
        let lens_at_30in = rows
            .iter()
            .find(|r| r.distance_in == 30.0 && r.tx_power_dbm == 20.0)
            .unwrap()
            .rssi_dbm;
        let bench_at_5ft = crate::uplink::UplinkScenario::fig10_bench(20.0, 1.0, 2.5).rssi_dbm();
        assert!(bench_at_5ft - lens_at_30in > 10.0);
        let text = report(&rows);
        assert!(text.contains("20 dBm"));
    }
}
