//! Figure 16: Wi-Fi RSSI with the implantable neural-recording antenna.
//!
//! The 4 cm loop antenna is implanted 1/16 inch under the surface of muscle
//! tissue (the in-vitro pork experiment), with the Bluetooth source 3 inches
//! from the tissue. The Wi-Fi receiver distance is swept in inches for 10
//! and 20 dBm Bluetooth transmit powers; the paper reports working links out
//! to tens of inches — better than the 1–2 cm range of prior dedicated-reader
//! implant prototypes.

use crate::applications::neural_implant_scenario;
use crate::SimError;

/// One point of the Fig. 16 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImplantRssiPoint {
    /// Bluetooth transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Implant-to-receiver distance, inches.
    pub distance_in: f64,
    /// Median Wi-Fi RSSI, dBm.
    pub rssi_dbm: f64,
    /// Whether the RSSI exceeds the Wi-Fi receiver sensitivity.
    pub detectable: bool,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Fig16Params {
    /// Receiver distances, inches.
    pub distances_in: Vec<f64>,
    /// Bluetooth powers, dBm.
    pub tx_powers_dbm: Vec<f64>,
}

impl Default for Fig16Params {
    fn default() -> Self {
        Fig16Params {
            distances_in: vec![5.0, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0],
            tx_powers_dbm: vec![10.0, 20.0],
        }
    }
}

/// Wi-Fi sensitivity used for the detectability flag, dBm.
pub const WIFI_SENSITIVITY_DBM: f64 = -92.0;

/// Runs the sweep.
pub fn run(params: &Fig16Params) -> Result<Vec<ImplantRssiPoint>, SimError> {
    let mut rows = Vec::new();
    for &power in &params.tx_powers_dbm {
        for &d in &params.distances_in {
            let scenario = neural_implant_scenario(power, d);
            scenario.validate()?;
            let rssi = scenario.rssi_dbm();
            rows.push(ImplantRssiPoint {
                tx_power_dbm: power,
                distance_in: d,
                rssi_dbm: rssi,
                detectable: rssi >= WIFI_SENSITIVITY_DBM,
            });
        }
    }
    Ok(rows)
}

/// Plain-text report.
pub fn report(rows: &[ImplantRssiPoint]) -> String {
    let mut out = String::from("Fig. 16 — neural-implant prototype Wi-Fi RSSI vs distance\n");
    out.push_str("distance(in)  10 dBm   20 dBm\n");
    let mut distances: Vec<f64> = rows.iter().map(|r| r.distance_in).collect();
    distances.sort_by(|a, b| a.partial_cmp(b).unwrap());
    distances.dedup();
    for d in distances {
        let mut line = format!("{d:>12}");
        for power in [10.0, 20.0] {
            match rows
                .iter()
                .find(|r| r.distance_in == d && r.tx_power_dbm == power)
            {
                Some(p) if p.detectable => {
                    line.push_str(&format!("  {:>7}", super::f1(p.rssi_dbm)))
                }
                _ => line.push_str("        -"),
            }
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implant_sweep_shape() {
        let rows = run(&Fig16Params::default()).unwrap();
        assert_eq!(rows.len(), 2 * 8);
        // The implant link works to tens of inches at 10 dBm (phone-class
        // Bluetooth), which is the paper's headline for medical implants.
        let range_10dbm = rows
            .iter()
            .filter(|r| r.tx_power_dbm == 10.0 && r.detectable)
            .map(|r| r.distance_in)
            .fold(0.0, f64::max);
        assert!(range_10dbm >= 35.0, "10 dBm implant range {range_10dbm} in");
        // Far better than the 1-2 cm (≈0.8 in) range of prior dedicated
        // readers.
        assert!(range_10dbm > 10.0 * 0.8);
        // RSSI decreases monotonically with distance.
        let series: Vec<&ImplantRssiPoint> =
            rows.iter().filter(|r| r.tx_power_dbm == 20.0).collect();
        for w in series.windows(2) {
            assert!(w[1].rssi_dbm <= w[0].rssi_dbm);
        }
        // The implant outperforms the contact lens at the same geometry
        // (bigger antenna, thinner lossy layer).
        let implant_25 = rows
            .iter()
            .find(|r| r.distance_in == 25.0 && r.tx_power_dbm == 20.0)
            .unwrap()
            .rssi_dbm;
        let lens_25 = crate::applications::contact_lens_scenario(20.0, 25.0).rssi_dbm();
        assert!(implant_25 > lens_25);
        let text = report(&rows);
        assert!(text.contains("distance(in)"));
    }
}
