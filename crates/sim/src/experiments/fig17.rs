//! Figure 17: bit error rate of card-to-card communication.
//!
//! Two credit-card form-factor tags communicate by backscattering the single
//! tone produced by a 10 dBm Bluetooth device (phone-class). The transmit
//! card sits 3 inches from the Bluetooth device; the receiving card's
//! distance is swept in inches and the BER of an 18-bit payload at 100 kbps
//! is measured. The paper reports working links up to about 30 inches.

use crate::applications::CardToCardScenario;
use crate::measurements::BitErrorCounter;
use crate::SimError;
use rand::{Rng, SeedableRng};

/// One point of the Fig. 17 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardBerPoint {
    /// Card-to-card distance, inches.
    pub distance_in: f64,
    /// Received tone power at the receiving card, dBm.
    pub received_dbm: f64,
    /// Measured bit error rate in [0, 1].
    pub ber: f64,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Fig17Params {
    /// Card-to-card distances, inches.
    pub distances_in: Vec<f64>,
    /// Number of 18-bit payloads per distance.
    pub payloads_per_distance: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig17Params {
    fn default() -> Self {
        Fig17Params {
            distances_in: vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 45.0, 60.0],
            payloads_per_distance: 10,
            seed: 0x17,
        }
    }
}

/// Runs the sweep.
pub fn run(params: &Fig17Params) -> Result<Vec<CardBerPoint>, SimError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let mut rows = Vec::new();
    for &d in &params.distances_in {
        let scenario = CardToCardScenario::fig17(d);
        let mut counter = BitErrorCounter::default();
        for _ in 0..params.payloads_per_distance {
            let bits: Vec<u8> = (0..18).map(|_| rng.gen_range(0..=1u8)).collect();
            let errors = scenario.simulate_bits(&bits, &mut rng)?;
            counter.record(bits.len(), errors);
        }
        rows.push(CardBerPoint {
            distance_in: d,
            received_dbm: scenario.received_power_dbm(),
            ber: counter.ber(),
        });
    }
    Ok(rows)
}

/// Plain-text report.
pub fn report(rows: &[CardBerPoint]) -> String {
    let mut out = String::from("Fig. 17 — card-to-card BER vs distance (10 dBm Bluetooth)\n");
    out.push_str("distance(in)  rx power(dBm)  BER\n");
    for r in rows {
        out.push_str(&format!(
            "{:>12} {:>14} {:>7}\n",
            r.distance_in,
            super::f1(r.received_dbm),
            super::f3(r.ber)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_ber_shape() {
        let params = Fig17Params {
            distances_in: vec![5.0, 20.0, 30.0, 90.0],
            payloads_per_distance: 4,
            ..Default::default()
        };
        let rows = run(&params).unwrap();
        assert_eq!(rows.len(), 4);
        // Within the paper's range (up to 30 inches): low BER.
        assert!(rows[0].ber < 0.05, "5 in BER {}", rows[0].ber);
        assert!(rows[1].ber < 0.1, "20 in BER {}", rows[1].ber);
        assert!(rows[2].ber < 0.2, "30 in BER {}", rows[2].ber);
        // Far beyond it: the link fails.
        assert!(rows[3].ber > 0.3, "90 in BER {}", rows[3].ber);
        // Received power decreases with distance.
        for w in rows.windows(2) {
            assert!(w[1].received_dbm < w[0].received_dbm);
        }
        let text = report(&rows);
        assert!(text.contains("card-to-card"));
    }
}
