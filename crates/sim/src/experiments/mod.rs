//! Experiment runners — one module per table/figure of the paper.
//!
//! Each module exposes a `run*` function that returns structured rows and a
//! `report` helper producing the plain-text table the bench harness and the
//! `run_experiments` example print. Runtime scales with the `trials`/length
//! parameters so the benches can use reduced settings while the example can
//! run the full versions; the *shape* of each result (who wins, slopes,
//! crossovers) is stable across those settings.
//!
//! | module | paper result |
//! |---|---|
//! | [`fig06`]  | Fig. 6 — single- vs double-sideband backscatter spectrum |
//! | [`fig09`]  | Fig. 9 — BLE single tone vs random advertisement, 3 devices |
//! | [`fig10`]  | Fig. 10 — Wi-Fi RSSI vs distance at 0/4/10/20 dBm |
//! | [`fig11`]  | Fig. 11 — CDF of Wi-Fi packet error rate at 2 and 11 Mbps |
//! | [`fig12`]  | Fig. 12 — iperf throughput vs backscatter rate |
//! | [`fig13`]  | Fig. 13 — downlink BER vs distance |
//! | [`fig14`]  | Fig. 14 — CDF of ZigBee RSSI at five locations |
//! | [`fig15`]  | Fig. 15 — contact-lens RSSI vs distance |
//! | [`fig16`]  | Fig. 16 — neural-implant RSSI vs distance |
//! | [`fig17`]  | Fig. 17 — card-to-card BER vs distance |
//! | [`power`]  | §3 — IC power budget table |
//! | [`packet_fit`] | §2.3.3 — Wi-Fi payload bytes per BLE advertisement |
//! | [`scrambler_seed`] | §4.4 — scrambler-seed predictability |
//! | [`ablations`] | design-choice ablations (square wave, guard interval, shift, downlink encoding) |

pub mod ablations;
pub mod fig06;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod packet_fit;
pub mod power;
pub mod scrambler_seed;

/// Formats a floating-point value with one decimal for report tables.
pub(crate) fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a floating-point value with three decimals for report tables.
pub(crate) fn f3(v: f64) -> String {
    format!("{v:.3}")
}
