//! Section 2.3.3 table: how many Wi-Fi payload bytes fit within a single
//! Bluetooth advertising packet at each 802.11b rate.

use interscatter_ble::timing::MAX_PAYLOAD_DURATION_S;
use interscatter_wifi::dot11b::rates::{payload_fit_in_ble_window, DsssRate};

/// One row of the packet-fit table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketFitRow {
    /// 802.11b rate.
    pub rate: DsssRate,
    /// Maximum PSDU bytes that fit in the advertising payload window
    /// (`None` when no useful packet fits, the 1 Mbps case).
    pub max_psdu_bytes: Option<usize>,
    /// The value the paper reports for this rate (`None` for 1 Mbps).
    pub paper_bytes: Option<usize>,
}

/// Runs the packet-fit computation against the paper's reported values
/// (38 / 104 / 209 bytes at 2 / 5.5 / 11 Mbps, nothing at 1 Mbps).
pub fn run() -> Vec<PacketFitRow> {
    let window = MAX_PAYLOAD_DURATION_S;
    vec![
        PacketFitRow {
            rate: DsssRate::Mbps1,
            max_psdu_bytes: payload_fit_in_ble_window(DsssRate::Mbps1, window),
            paper_bytes: None,
        },
        PacketFitRow {
            rate: DsssRate::Mbps2,
            max_psdu_bytes: payload_fit_in_ble_window(DsssRate::Mbps2, window),
            paper_bytes: Some(38),
        },
        PacketFitRow {
            rate: DsssRate::Mbps5_5,
            max_psdu_bytes: payload_fit_in_ble_window(DsssRate::Mbps5_5, window),
            paper_bytes: Some(104),
        },
        PacketFitRow {
            rate: DsssRate::Mbps11,
            max_psdu_bytes: payload_fit_in_ble_window(DsssRate::Mbps11, window),
            paper_bytes: Some(209),
        },
    ]
}

/// Plain-text report.
pub fn report(rows: &[PacketFitRow]) -> String {
    let mut out = String::from("§2.3.3 — Wi-Fi payload fitting in one BLE advertising packet\n");
    out.push_str("rate       computed(bytes)  paper(bytes)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>15} {:>13}\n",
            format!("{:?}", r.rate),
            r.max_psdu_bytes.map_or("-".to_string(), |b| b.to_string()),
            r.paper_bytes.map_or("-".to_string(), |b| b.to_string()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computed_values_match_the_paper() {
        let rows = run();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].max_psdu_bytes, None);
        for r in &rows[1..] {
            let computed = r.max_psdu_bytes.unwrap();
            let paper = r.paper_bytes.unwrap();
            let err = (computed as i64 - paper as i64).abs();
            assert!(err <= 2, "{:?}: computed {computed}, paper {paper}", r.rate);
        }
        let text = report(&rows);
        assert!(text.contains("Mbps11") && text.contains("209"));
    }
}
