//! Section 3 power table: the interscatter IC power budget and the
//! comparison against active radios.

use interscatter_backscatter::power::{paper, IcPowerModel};

/// One row of the power budget table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerRow {
    /// Block name.
    pub block: &'static str,
    /// Power reported by the paper, watts.
    pub paper_w: f64,
    /// Power produced by the calibrated model, watts.
    pub model_w: f64,
}

/// The operating points reported alongside the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Description.
    pub name: &'static str,
    /// Total active power, watts.
    pub total_w: f64,
    /// Energy per transmitted bit, joules.
    pub energy_per_bit_j: f64,
}

/// Runs the power-budget reproduction.
pub fn run() -> (Vec<PowerRow>, Vec<OperatingPoint>) {
    let model = IcPowerModel::tsmc65nm();
    let rows = vec![
        PowerRow {
            block: "frequency synthesizer",
            paper_w: paper::FREQUENCY_SYNTHESIZER_W,
            model_w: model.synthesizer().total_w(),
        },
        PowerRow {
            block: "baseband processor (2 Mbps)",
            paper_w: paper::BASEBAND_PROCESSOR_W,
            model_w: model.baseband(2e6).total_w(),
        },
        PowerRow {
            block: "backscatter modulator",
            paper_w: paper::BACKSCATTER_MODULATOR_W,
            model_w: model.modulator(11e6).total_w(),
        },
        PowerRow {
            block: "total (2 Mbps Wi-Fi)",
            paper_w: paper::TOTAL_2MBPS_W,
            model_w: model.total_active_w(2e6, 11e6),
        },
    ];
    let points = vec![
        OperatingPoint {
            name: "2 Mbps 802.11b",
            total_w: model.total_active_w(2e6, 11e6),
            energy_per_bit_j: model.energy_per_bit_j(2e6, 11e6),
        },
        OperatingPoint {
            name: "11 Mbps 802.11b",
            total_w: model.total_active_w(11e6, 11e6),
            energy_per_bit_j: model.energy_per_bit_j(11e6, 11e6),
        },
        OperatingPoint {
            name: "250 kbps 802.15.4",
            total_w: model.total_active_w(250e3, 2e6),
            energy_per_bit_j: model.energy_per_bit_j(250e3, 2e6),
        },
        OperatingPoint {
            name: "duty-cycled (248 µs per 20 ms)",
            total_w: model.duty_cycled_w(2e6, 11e6, 248e-6, 20e-3),
            energy_per_bit_j: model.energy_per_bit_j(2e6, 11e6),
        },
    ];
    (rows, points)
}

/// Plain-text report.
pub fn report(rows: &[PowerRow], points: &[OperatingPoint]) -> String {
    let mut out = String::from("§3 — interscatter IC power budget (65 nm)\n");
    out.push_str("block                           paper(µW)  model(µW)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<30} {:>10} {:>10}\n",
            r.block,
            super::f1(r.paper_w * 1e6),
            super::f1(r.model_w * 1e6)
        ));
    }
    out.push_str("\noperating point                    power(µW)  energy/bit(pJ)\n");
    for p in points {
        out.push_str(&format!(
            "{:<34} {:>9} {:>15}\n",
            p.name,
            super::f1(p.total_w * 1e6),
            super::f1(p.energy_per_bit_j * 1e12)
        ));
    }
    out.push_str(&format!(
        "\nactive Wi-Fi TX power for comparison: {} µW (≈{}x interscatter)\n",
        super::f1(paper::ACTIVE_WIFI_TX_W * 1e6),
        super::f1(paper::ACTIVE_WIFI_TX_W / paper::TOTAL_2MBPS_W)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_paper_within_tolerance() {
        let (rows, points) = run();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            let err = (r.model_w - r.paper_w).abs() / r.paper_w;
            assert!(
                err < 0.02,
                "{}: model {} vs paper {}",
                r.block,
                r.model_w,
                r.paper_w
            );
        }
        // The total is ~28 µW and the energy per bit ~14 pJ.
        let total = rows.last().unwrap().model_w;
        assert!((total - 28e-6).abs() < 0.5e-6);
        let two_mbps = &points[0];
        assert!((two_mbps.energy_per_bit_j - 14e-12).abs() < 1e-12);
        // Duty cycling brings the average well below the active power.
        let duty = points.iter().find(|p| p.name.starts_with("duty")).unwrap();
        assert!(duty.total_w < total / 5.0);
        let text = report(&rows, &points);
        assert!(text.contains("frequency synthesizer") && text.contains("energy/bit"));
    }
}
