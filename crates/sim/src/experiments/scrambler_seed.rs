//! Section 4.4: scrambler-seed predictability across Wi-Fi chipsets.
//!
//! The downlink crafting needs to predict the 802.11g scrambler seed. The
//! paper observes that several Atheros chipsets increment the seed by one
//! between frames, and that ath5k cards can pin it via a driver register.
//! This experiment evaluates, for each seed policy, how often a predictor
//! that assumes "previous seed + 1" (or the pinned value) guesses the next
//! frame's seed correctly — and what downlink reliability that implies.

use interscatter_wifi::ofdm::scrambler::SeedPolicy;

/// One row of the predictability study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedPredictability {
    /// Chipset behaviour name.
    pub policy: &'static str,
    /// Fraction of frames whose seed the predictor guessed correctly.
    pub prediction_accuracy: f64,
    /// Whether the policy is usable for the AM downlink.
    pub usable_for_downlink: bool,
}

/// Runs the predictability study over `frames` consecutive frames.
pub fn run(frames: u64) -> Vec<SeedPredictability> {
    let policies: [(&'static str, SeedPolicy); 3] = [
        (
            "Atheros AR5001G/AR5007G/AR9580 (incrementing)",
            SeedPolicy::Incrementing { start: 37 },
        ),
        (
            "ath5k with pinned GEN_SCRAMBLER (fixed)",
            SeedPolicy::Fixed { seed: 0x2C },
        ),
        ("standard-compliant random seed", SeedPolicy::Random),
    ];
    policies
        .iter()
        .map(|(name, policy)| {
            let mut correct = 0u64;
            for frame in 1..=frames {
                let previous = policy.seed_for_frame(frame - 1);
                let predicted = match policy {
                    SeedPolicy::Incrementing { .. } => {
                        if previous >= 127 {
                            1
                        } else {
                            previous + 1
                        }
                    }
                    SeedPolicy::Fixed { .. } => previous,
                    SeedPolicy::Random => previous.wrapping_add(1).clamp(1, 127),
                };
                if predicted == policy.seed_for_frame(frame) {
                    correct += 1;
                }
            }
            let accuracy = correct as f64 / frames as f64;
            SeedPredictability {
                policy: name,
                prediction_accuracy: accuracy,
                usable_for_downlink: accuracy > 0.99,
            }
        })
        .collect()
}

/// Plain-text report.
pub fn report(rows: &[SeedPredictability]) -> String {
    let mut out = String::from("§4.4 — scrambler-seed predictability\n");
    out.push_str("chipset behaviour                                accuracy  usable\n");
    for r in rows {
        out.push_str(&format!(
            "{:<48} {:>8} {:>7}\n",
            r.policy,
            super::f3(r.prediction_accuracy),
            r.usable_for_downlink
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictability_matches_the_papers_findings() {
        let rows = run(500);
        assert_eq!(rows.len(), 3);
        let incrementing = &rows[0];
        let fixed = &rows[1];
        let random = &rows[2];
        assert!(incrementing.prediction_accuracy > 0.99);
        assert!(incrementing.usable_for_downlink);
        assert_eq!(fixed.prediction_accuracy, 1.0);
        assert!(fixed.usable_for_downlink);
        assert!(
            random.prediction_accuracy < 0.2,
            "random accuracy {}",
            random.prediction_accuracy
        );
        assert!(!random.usable_for_downlink);
        let text = report(&rows);
        assert!(text.contains("Atheros") && text.contains("random"));
    }
}
