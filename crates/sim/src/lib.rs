//! # interscatter-sim
//!
//! End-to-end simulations and experiment runners for the Interscatter
//! (SIGCOMM 2016) reproduction.
//!
//! The lower crates provide the pieces — BLE single-tone generation, the
//! single-sideband backscatter tag, the 802.11b/802.11g/802.15.4 PHYs and
//! the RF channel models. This crate assembles them into the scenarios the
//! paper evaluates and regenerates every figure:
//!
//! * [`uplink`] — Bluetooth → tag → Wi-Fi/ZigBee receiver simulations at
//!   both the link-budget level (RSSI sweeps, Fig. 10/14/15/16) and the
//!   waveform level (packet error rate, Fig. 11).
//! * [`downlink`] — 802.11g OFDM AM → envelope detector (BER vs distance,
//!   Fig. 13).
//! * [`mac`] — an event-driven model of a Wi-Fi TCP flow coexisting with
//!   backscatter transmissions, with and without the double-sideband mirror
//!   copy (Fig. 12), plus the CTS-to-Self / RTS reservation optimisations of
//!   §2.3.3.
//! * [`applications`] — the three proof-of-concept applications of §5:
//!   contact lens, neural implant, card-to-card.
//! * [`measurements`] — PER/BER/CDF bookkeeping shared by the experiments.
//! * [`experiments`] — one module per table/figure, each with a `run`
//!   function returning structured rows and a plain-text report; the bench
//!   harness and the `run_experiments` example call these.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod applications;
pub mod downlink;
pub mod experiments;
pub mod mac;
pub mod measurements;
pub mod uplink;

/// Errors produced by the simulation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A scenario parameter was invalid.
    InvalidScenario(&'static str),
    /// An error from the BLE layer.
    Ble(interscatter_ble::BleError),
    /// An error from the Wi-Fi layer.
    Wifi(interscatter_wifi::WifiError),
    /// An error from the ZigBee layer.
    Zigbee(interscatter_zigbee::ZigbeeError),
    /// An error from the backscatter layer.
    Backscatter(interscatter_backscatter::BackscatterError),
    /// An error from the channel layer.
    Channel(interscatter_channel::ChannelError),
    /// An error from the DSP layer.
    Dsp(interscatter_dsp::DspError),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::InvalidScenario(what) => write!(f, "invalid scenario: {what}"),
            SimError::Ble(e) => write!(f, "BLE error: {e}"),
            SimError::Wifi(e) => write!(f, "Wi-Fi error: {e}"),
            SimError::Zigbee(e) => write!(f, "ZigBee error: {e}"),
            SimError::Backscatter(e) => write!(f, "backscatter error: {e}"),
            SimError::Channel(e) => write!(f, "channel error: {e}"),
            SimError::Dsp(e) => write!(f, "DSP error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for SimError {
            fn from(e: $ty) -> Self {
                SimError::$variant(e)
            }
        }
    };
}

impl_from!(Ble, interscatter_ble::BleError);
impl_from!(Wifi, interscatter_wifi::WifiError);
impl_from!(Zigbee, interscatter_zigbee::ZigbeeError);
impl_from!(Backscatter, interscatter_backscatter::BackscatterError);
impl_from!(Channel, interscatter_channel::ChannelError);
impl_from!(Dsp, interscatter_dsp::DspError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        assert!(SimError::InvalidScenario("distance")
            .to_string()
            .contains("distance"));
        let e: SimError = interscatter_ble::BleError::CrcMismatch.into();
        assert!(e.to_string().contains("BLE"));
        let e: SimError = interscatter_wifi::WifiError::PreambleNotFound.into();
        assert!(e.to_string().contains("Wi-Fi"));
        let e: SimError = interscatter_zigbee::ZigbeeError::SfdNotFound.into();
        assert!(e.to_string().contains("ZigBee"));
        let e: SimError = interscatter_backscatter::BackscatterError::NoPacketDetected.into();
        assert!(e.to_string().contains("backscatter"));
        let e: SimError = interscatter_channel::ChannelError::InvalidParameter("x").into();
        assert!(e.to_string().contains("channel"));
        let e: SimError = interscatter_dsp::DspError::EmptyInput("x").into();
        assert!(e.to_string().contains("DSP"));
    }
}
