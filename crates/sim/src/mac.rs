//! Coexistence of backscatter transmissions with a regular Wi-Fi flow
//! (Fig. 12) and the channel-reservation optimisations of §2.3.3.
//!
//! The Fig. 12 experiment runs an iperf TCP flow between a Wi-Fi AP and a
//! phone on channel 6 while a backscatter device generates 2 Mbps packets at
//! 50, 650 or 1000 packets/s. With the double-sideband baseline the mirror
//! copy of every backscattered packet lands inside channel 6 and collides
//! with the flow; with single-sideband backscatter it does not. This module
//! models that interaction at the level of airtime and collision
//! probability: a TCP flow's throughput is computed from the airtime left
//! over after interfering transmissions puncture it, with collisions forcing
//! rate-adaptation backoff exactly as the Linksys/Nexus pair in the paper
//! experienced.

use interscatter_wifi::dot11b::rates::SHORT_PLCP_DURATION_S;
use interscatter_wifi::mac::{DIFS_S, SIFS_S};
use rand::Rng;

/// How the backscatter device interferes with the observed Wi-Fi channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterferenceMode {
    /// No backscatter device present (baseline).
    None,
    /// Single-sideband interscatter: the generated packet is on another
    /// channel and no energy lands in the observed channel.
    SingleSideband,
    /// Double-sideband backscatter: the mirror copy lands in the observed
    /// channel and collides with frames that overlap it in time.
    DoubleSideband,
}

/// Configuration of the coexistence simulation.
#[derive(Debug, Clone, Copy)]
pub struct CoexistenceConfig {
    /// Offered load of the iperf flow's link in Mbps (802.11g PHY rate the
    /// rate-adaptation settles at when clean).
    pub wifi_phy_rate_mbps: f64,
    /// MAC efficiency of a TCP flow (header, ACK, DIFS/SIFS, TCP-ACK
    /// overhead): the fraction of PHY rate an iperf flow achieves on a clean
    /// channel. ~0.43 reproduces the paper's ~23 Mbps baseline on 54 Mbps.
    pub mac_efficiency: f64,
    /// Duration of one backscatter-generated packet on the air, seconds
    /// (2 Mbps, 32-byte payload in the paper).
    pub backscatter_packet_s: f64,
    /// Mean Wi-Fi data-frame airtime, seconds (1500-byte frames at the PHY
    /// rate plus preamble).
    pub wifi_frame_airtime_s: f64,
    /// Throughput penalty factor applied per collision via rate adaptation:
    /// every collision wastes the frame airtime plus a retransmission
    /// backoff.
    pub collision_penalty_s: f64,
}

impl Default for CoexistenceConfig {
    fn default() -> Self {
        let wifi_phy_rate_mbps = 54.0;
        let frame_airtime = 20e-6 + 1500.0 * 8.0 / (wifi_phy_rate_mbps * 1e6) + SIFS_S + 30e-6;
        CoexistenceConfig {
            wifi_phy_rate_mbps,
            mac_efficiency: 0.43,
            backscatter_packet_s: SHORT_PLCP_DURATION_S + 36.0 * 8.0 / 2e6,
            wifi_frame_airtime_s: frame_airtime,
            collision_penalty_s: frame_airtime + DIFS_S + 300e-6,
        }
    }
}

/// Result of one coexistence simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoexistenceResult {
    /// Achieved iperf throughput, Mbps.
    pub throughput_mbps: f64,
    /// Fraction of Wi-Fi frames that collided with backscatter energy.
    pub collision_fraction: f64,
}

/// Simulates `duration_s` seconds of an iperf flow sharing the air with a
/// backscatter device sending `backscatter_rate_pps` packets per second in
/// the given interference mode.
pub fn simulate_coexistence<R: Rng>(
    config: &CoexistenceConfig,
    mode: InterferenceMode,
    backscatter_rate_pps: f64,
    duration_s: f64,
    rng: &mut R,
) -> CoexistenceResult {
    let clean_throughput = config.wifi_phy_rate_mbps * config.mac_efficiency;
    // Fraction of airtime occupied by interfering energy in the observed
    // channel.
    let interference_duty = match mode {
        InterferenceMode::None | InterferenceMode::SingleSideband => 0.0,
        InterferenceMode::DoubleSideband => {
            (backscatter_rate_pps * config.backscatter_packet_s).min(1.0)
        }
    };
    if interference_duty == 0.0 {
        return CoexistenceResult {
            throughput_mbps: clean_throughput,
            collision_fraction: 0.0,
        };
    }
    // Frame-by-frame: a Wi-Fi frame collides if any interfering packet
    // overlaps it. Backscatter arrivals are periodic but unsynchronised with
    // the flow, so the per-frame collision probability is the probability
    // that an arrival falls within (frame airtime + backscatter duration) of
    // the frame start.
    let interval = 1.0 / backscatter_rate_pps;
    let vulnerable = config.wifi_frame_airtime_s + config.backscatter_packet_s;
    let p_collision = (vulnerable / interval).min(1.0);
    let mut productive_s = 0.0f64;
    let mut now = 0.0f64;
    let mut frames = 0usize;
    let mut collisions = 0usize;
    while now < duration_s {
        frames += 1;
        if rng.gen_range(0.0..1.0) < p_collision {
            collisions += 1;
            now += config.collision_penalty_s;
        } else {
            productive_s += config.wifi_frame_airtime_s;
            now += config.wifi_frame_airtime_s + DIFS_S;
        }
    }
    let efficiency = productive_s / duration_s;
    // Clean MAC efficiency already accounts for protocol overhead; scale the
    // clean throughput by the share of airtime that stayed productive
    // relative to the collision-free case.
    let clean_efficiency = config.wifi_frame_airtime_s / (config.wifi_frame_airtime_s + DIFS_S);
    CoexistenceResult {
        throughput_mbps: clean_throughput * (efficiency / clean_efficiency).min(1.0),
        collision_fraction: if frames == 0 {
            0.0
        } else {
            collisions as f64 / frames as f64
        },
    }
}

/// Effectiveness of the §2.3.3 reservation optimisations: the fraction of
/// backscatter transmissions that avoid colliding with other Wi-Fi traffic.
///
/// * Without any reservation, a backscatter packet collides whenever the
///   channel happens to be busy (probability = channel occupancy).
/// * With CTS-to-Self scheduled by the helper device, or with the tag's
///   RTS/CTS exchange, the channel is reserved and only the (small)
///   probability that a hidden device ignores the reservation remains.
pub fn backscatter_delivery_probability(channel_occupancy: f64, reservation: bool) -> f64 {
    let occupancy = channel_occupancy.clamp(0.0, 1.0);
    if reservation {
        1.0 - occupancy * 0.05
    } else {
        1.0 - occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(mode: InterferenceMode, pps: f64) -> CoexistenceResult {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        simulate_coexistence(&CoexistenceConfig::default(), mode, pps, 2.0, &mut rng)
    }

    #[test]
    fn baseline_matches_a_typical_iperf_number() {
        let r = run(InterferenceMode::None, 0.0);
        assert!(
            (20.0..26.0).contains(&r.throughput_mbps),
            "baseline {} Mbps",
            r.throughput_mbps
        );
        assert_eq!(r.collision_fraction, 0.0);
    }

    #[test]
    fn single_sideband_does_not_hurt_the_flow() {
        let baseline = run(InterferenceMode::None, 0.0).throughput_mbps;
        for pps in [50.0, 650.0, 1000.0] {
            let r = run(InterferenceMode::SingleSideband, pps);
            assert!(
                (r.throughput_mbps - baseline).abs() < 0.5,
                "{pps} pps: {}",
                r.throughput_mbps
            );
        }
    }

    #[test]
    fn double_sideband_degrades_with_rate() {
        let baseline = run(InterferenceMode::None, 0.0).throughput_mbps;
        let low = run(InterferenceMode::DoubleSideband, 50.0);
        let mid = run(InterferenceMode::DoubleSideband, 650.0);
        let high = run(InterferenceMode::DoubleSideband, 1000.0);
        // At 50 pps the impact is small.
        assert!(
            low.throughput_mbps > 0.85 * baseline,
            "50 pps: {}",
            low.throughput_mbps
        );
        // At 650 and 1000 pps the mirror copy costs a large fraction of the
        // throughput, and more at the higher rate.
        assert!(
            mid.throughput_mbps < 0.8 * baseline,
            "650 pps: {}",
            mid.throughput_mbps
        );
        assert!(high.throughput_mbps < mid.throughput_mbps + 1.0);
        assert!(high.collision_fraction > mid.collision_fraction * 0.8);
        assert!(high.collision_fraction > 0.3);
    }

    #[test]
    fn reservation_improves_backscatter_delivery() {
        for occupancy in [0.1, 0.4, 0.8] {
            let without = backscatter_delivery_probability(occupancy, false);
            let with = backscatter_delivery_probability(occupancy, true);
            assert!(with > without);
            assert!(with > 0.9);
        }
        assert_eq!(backscatter_delivery_probability(0.0, false), 1.0);
        assert!(backscatter_delivery_probability(2.0, false) >= 0.0);
    }
}
