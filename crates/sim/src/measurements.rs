//! Measurement bookkeeping shared by the experiment runners.
//!
//! The paper reports its results as RSSI-vs-distance curves, packet/bit
//! error rates, and CDFs over repeated trials; this module provides the
//! small statistics toolkit those reports need.

/// A packet-error-rate counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketErrorCounter {
    /// Packets transmitted.
    pub transmitted: usize,
    /// Packets received with the correct payload.
    pub received_ok: usize,
}

impl PacketErrorCounter {
    /// Records one transmission attempt and whether it was received
    /// correctly.
    pub fn record(&mut self, ok: bool) {
        self.transmitted += 1;
        if ok {
            self.received_ok += 1;
        }
    }

    /// Packet error rate in [0, 1]; 0 when nothing has been transmitted.
    pub fn per(&self) -> f64 {
        if self.transmitted == 0 {
            0.0
        } else {
            1.0 - self.received_ok as f64 / self.transmitted as f64
        }
    }
}

/// A bit-error-rate counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitErrorCounter {
    /// Bits transmitted.
    pub transmitted: usize,
    /// Bits received in error.
    pub errors: usize,
}

impl BitErrorCounter {
    /// Records a block of `bits` transmitted bits with `errors` errors.
    pub fn record(&mut self, bits: usize, errors: usize) {
        self.transmitted += bits;
        self.errors += errors.min(bits);
    }

    /// Bit error rate in [0, 1]; 0 when nothing has been transmitted.
    pub fn ber(&self) -> f64 {
        if self.transmitted == 0 {
            0.0
        } else {
            self.errors as f64 / self.transmitted as f64
        }
    }
}

/// An empirical cumulative distribution function over f64 samples.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Cdf {
            samples: Vec::new(),
        }
    }

    /// Builds a CDF from a sample collection.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut cdf = Cdf::new();
        for s in samples {
            cdf.push(s);
        }
        cdf
    }

    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The raw samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// True if no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The fraction of samples ≤ `value`.
    pub fn fraction_at_or_below(&self, value: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&s| s <= value).count() as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (q in [0, 1]) of the samples; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }

    /// The median of the samples.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The minimum and maximum of the samples.
    pub fn range(&self) -> Option<(f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        Some((min, max))
    }

    /// Evaluates the CDF at `n` evenly spaced points between the sample
    /// minimum and maximum, returning `(value, cumulative fraction)` pairs —
    /// the series format of the paper's CDF plots (Figs. 11 and 14).
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        let Some((min, max)) = self.range() else {
            return Vec::new();
        };
        if n < 2 || (max - min).abs() < f64::EPSILON {
            return vec![(min, 1.0)];
        }
        (0..n)
            .map(|i| {
                let v = min + (max - min) * i as f64 / (n - 1) as f64;
                (v, self.fraction_at_or_below(v))
            })
            .collect()
    }
}

/// Mean of a slice; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_counter() {
        let mut c = PacketErrorCounter::default();
        assert_eq!(c.per(), 0.0);
        for i in 0..10 {
            c.record(i % 4 != 0);
        }
        assert_eq!(c.transmitted, 10);
        assert_eq!(c.received_ok, 7);
        assert!((c.per() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ber_counter() {
        let mut c = BitErrorCounter::default();
        assert_eq!(c.ber(), 0.0);
        c.record(1000, 13);
        c.record(1000, 7);
        assert!((c.ber() - 0.01).abs() < 1e-12);
        // Errors are clamped to the block size.
        c.record(10, 50);
        assert_eq!(c.errors, 30);
    }

    #[test]
    fn cdf_quantiles_and_curve() {
        let cdf = Cdf::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(cdf.len(), 100);
        assert!(!cdf.is_empty());
        assert!((cdf.median().unwrap() - 50.0).abs() <= 1.0);
        assert!((cdf.quantile(0.9).unwrap() - 90.0).abs() <= 1.0);
        assert_eq!(cdf.range(), Some((1.0, 100.0)));
        assert!((cdf.fraction_at_or_below(25.0) - 0.25).abs() < 0.01);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1000.0), 1.0);
        let curve = cdf.curve(11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].0, 1.0);
        assert_eq!(curve[10].0, 100.0);
        assert!((curve[10].1 - 1.0).abs() < 1e-12);
        // Monotone non-decreasing.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn cdf_edge_cases() {
        let empty = Cdf::new();
        assert!(empty.is_empty());
        assert!(empty.median().is_none());
        assert!(empty.range().is_none());
        assert!(empty.curve(10).is_empty());
        assert_eq!(empty.fraction_at_or_below(0.0), 0.0);
        let constant = Cdf::from_samples([3.0, 3.0, 3.0]);
        assert_eq!(constant.curve(10), vec![(3.0, 1.0)]);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
