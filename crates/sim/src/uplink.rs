//! Uplink simulations: Bluetooth → interscatter tag → Wi-Fi / ZigBee
//! receiver.
//!
//! Two levels of fidelity are provided, mirroring how the evaluation is
//! structured:
//!
//! * **Link-budget level** — [`UplinkScenario::rssi_dbm`] computes the RSSI
//!   a commodity receiver reports for a given geometry and transmit power.
//!   This is what the range sweeps of Figures 10, 14, 15 and 16 need; it is
//!   fast enough to sweep hundreds of points.
//! * **Waveform level** — [`UplinkScenario::simulate_wifi_packet`] runs the
//!   actual 802.11b chip stream through AWGN at the link-budget SNR and the
//!   full receiver, producing packet/bit errors. Figure 11's PER CDF is
//!   built from these trials. (The tag's frequency-translation fidelity is
//!   validated separately in the backscatter crate at the full carrier
//!   sample rate; running every PER trial at 176 MS/s would add hours of
//!   runtime without changing the decision statistics, which depend only on
//!   the post-translation SNR.)

use crate::measurements::{BitErrorCounter, PacketErrorCounter};
use crate::SimError;
use interscatter_backscatter::tag::{SidebandMode, TargetPhy};
use interscatter_channel::antenna::Antenna;
use interscatter_channel::link::{BackscatterLink, ConversionLoss};
use interscatter_channel::noise::NoiseModel;
use interscatter_channel::pathloss::LogDistanceModel;
use interscatter_channel::tissue::TissuePath;
use interscatter_dsp::units::{db_to_amplitude, feet_to_meters};
use interscatter_wifi::dot11b::{Dot11bReceiver, Dot11bTransmitter, DsssRate};
use interscatter_zigbee::{ZigbeeReceiver, ZigbeeTransmitter};
use rand::Rng;

/// A complete uplink scenario description.
#[derive(Debug, Clone)]
pub struct UplinkScenario {
    /// Bluetooth transmit power, dBm.
    pub ble_tx_power_dbm: f64,
    /// Distance from the Bluetooth source to the tag, metres.
    pub source_to_tag_m: f64,
    /// Distance from the tag to the receiver, metres.
    pub tag_to_rx_m: f64,
    /// What the tag synthesizes.
    pub target: TargetPhy,
    /// Sideband architecture of the tag.
    pub sideband: SidebandMode,
    /// Antenna at the tag (monopole on the bench, loop for the implants).
    pub tag_antenna: Antenna,
    /// Tissue covering the tag, traversed on both hops.
    pub tag_tissue: TissuePath,
    /// Path-loss exponent environment.
    pub propagation: LogDistanceModel,
}

impl UplinkScenario {
    /// The bench setup of Fig. 10: 2 Mbps Wi-Fi on channel 11, single
    /// sideband, monopole antennas, indoor line of sight.
    pub fn fig10_bench(ble_tx_power_dbm: f64, source_to_tag_ft: f64, tag_to_rx_ft: f64) -> Self {
        UplinkScenario {
            ble_tx_power_dbm,
            source_to_tag_m: feet_to_meters(source_to_tag_ft),
            tag_to_rx_m: feet_to_meters(tag_to_rx_ft),
            target: TargetPhy::Wifi(DsssRate::Mbps2),
            sideband: SidebandMode::Single,
            tag_antenna: Antenna::monopole_2dbi(),
            tag_tissue: TissuePath::new(),
            propagation: LogDistanceModel::indoor_los(2.462e9),
        }
    }

    /// The ZigBee setup of Fig. 14: tag 2 ft from the Bluetooth source,
    /// generating packets on ZigBee channel 14.
    pub fn fig14_zigbee(tag_to_rx_ft: f64) -> Self {
        UplinkScenario {
            ble_tx_power_dbm: 0.0,
            source_to_tag_m: feet_to_meters(2.0),
            tag_to_rx_m: feet_to_meters(tag_to_rx_ft),
            target: TargetPhy::Zigbee,
            sideband: SidebandMode::Single,
            tag_antenna: Antenna::monopole_2dbi(),
            tag_tissue: TissuePath::new(),
            propagation: LogDistanceModel::indoor_los(2.420e9),
        }
    }

    /// Validates the scenario.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.source_to_tag_m <= 0.0 || self.tag_to_rx_m <= 0.0 {
            return Err(SimError::InvalidScenario("distances must be positive"));
        }
        self.propagation.validate()?;
        self.tag_antenna.validate()?;
        Ok(())
    }

    /// Builds the link-budget object for this scenario.
    pub fn link(&self) -> BackscatterLink {
        BackscatterLink {
            tx_power_dbm: self.ble_tx_power_dbm,
            tx_antenna: Antenna::monopole_2dbi(),
            tag_antenna: self.tag_antenna,
            rx_antenna: Antenna::monopole_2dbi(),
            source_to_tag: self.propagation,
            tag_to_rx: self.propagation,
            tissue_source_to_tag: self.tag_tissue.clone(),
            tissue_tag_to_rx: self.tag_tissue.clone(),
            conversion: match self.sideband {
                SidebandMode::Single => ConversionLoss::single_sideband(),
                SidebandMode::Double => ConversionLoss::double_sideband(),
            },
        }
    }

    /// The receiver noise model implied by the target PHY.
    pub fn noise_model(&self) -> NoiseModel {
        match self.target {
            TargetPhy::Wifi(_) => NoiseModel::wifi_dsss(),
            TargetPhy::Zigbee => NoiseModel::zigbee(),
        }
    }

    /// Median RSSI at the receiver, dBm.
    pub fn rssi_dbm(&self) -> f64 {
        self.link()
            .received_power_dbm(self.source_to_tag_m, self.tag_to_rx_m)
    }

    /// RSSI with per-trial shadowing (location-to-location variation).
    pub fn rssi_shadowed_dbm<R: Rng>(&self, rng: &mut R) -> f64 {
        self.link()
            .received_power_shadowed_dbm(self.source_to_tag_m, self.tag_to_rx_m, rng)
    }

    /// SNR at the receiver, dB.
    pub fn snr_db(&self) -> f64 {
        self.noise_model().snr_db(self.rssi_dbm())
    }

    /// Simulates one backscatter-generated Wi-Fi packet through the receiver
    /// at the scenario's link budget, returning `(received_ok, bit_errors,
    /// payload_bits)`.
    pub fn simulate_wifi_packet<R: Rng>(
        &self,
        payload: &[u8],
        rssi_dbm: f64,
        rng: &mut R,
    ) -> Result<(bool, usize, usize), SimError> {
        let TargetPhy::Wifi(rate) = self.target else {
            return Err(SimError::InvalidScenario(
                "simulate_wifi_packet requires a Wi-Fi target",
            ));
        };
        let tx = Dot11bTransmitter::new(rate);
        let frame = tx.transmit(payload)?;
        let amplitude = db_to_amplitude(rssi_dbm);
        let scaled: Vec<_> = frame.chips.iter().map(|&c| c * amplitude).collect();
        let noise = self.noise_model();
        let noisy = noise.add_noise(&scaled, rng);
        let rx = Dot11bReceiver::default();
        match rx.receive(&noisy) {
            Ok(received) => {
                let ok = received.fcs_ok && received.payload == payload;
                let errors =
                    interscatter_wifi::dot11b::rx::payload_bit_errors(&frame, &received.payload);
                Ok((ok, errors, payload.len() * 8))
            }
            Err(_) => Ok((false, payload.len() * 8, payload.len() * 8)),
        }
    }

    /// Simulates one backscatter-generated ZigBee packet, returning
    /// `(received_ok, lqi)`.
    pub fn simulate_zigbee_packet<R: Rng>(
        &self,
        payload: &[u8],
        rssi_dbm: f64,
        rng: &mut R,
    ) -> Result<(bool, usize), SimError> {
        if self.target != TargetPhy::Zigbee {
            return Err(SimError::InvalidScenario(
                "simulate_zigbee_packet requires a ZigBee target",
            ));
        }
        let tx = ZigbeeTransmitter::default();
        let wave = tx.transmit(payload)?;
        let amplitude = db_to_amplitude(rssi_dbm);
        let scaled: Vec<_> = wave.samples.iter().map(|&c| c * amplitude).collect();
        let noisy = self.noise_model().add_noise(&scaled, rng);
        let rx = ZigbeeReceiver::default();
        match rx.receive(&noisy) {
            Ok(frame) => Ok((frame.payload == payload, frame.lqi)),
            Err(_) => Ok((false, 0)),
        }
    }

    /// Runs `trials` Wi-Fi packets at this scenario's (shadowed) link budget
    /// and returns the packet- and bit-error counters.
    pub fn wifi_error_rates<R: Rng>(
        &self,
        payload_len: usize,
        trials: usize,
        rng: &mut R,
    ) -> Result<(PacketErrorCounter, BitErrorCounter), SimError> {
        self.validate()?;
        let mut per = PacketErrorCounter::default();
        let mut ber = BitErrorCounter::default();
        for t in 0..trials {
            let payload: Vec<u8> = (0..payload_len).map(|i| ((i + t) % 251) as u8).collect();
            let rssi = self.rssi_shadowed_dbm(rng);
            let (ok, errors, bits) = self.simulate_wifi_packet(&payload, rssi, rng)?;
            per.record(ok);
            ber.record(bits, errors);
        }
        Ok((per, ber))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(UplinkScenario::fig10_bench(0.0, 1.0, 10.0)
            .validate()
            .is_ok());
        let mut s = UplinkScenario::fig10_bench(0.0, 1.0, 10.0);
        s.tag_to_rx_m = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rssi_falls_with_distance_and_rises_with_power() {
        let near = UplinkScenario::fig10_bench(0.0, 1.0, 10.0).rssi_dbm();
        let far = UplinkScenario::fig10_bench(0.0, 1.0, 60.0).rssi_dbm();
        assert!(near > far + 10.0);
        let loud = UplinkScenario::fig10_bench(20.0, 1.0, 10.0).rssi_dbm();
        assert!((loud - near - 20.0).abs() < 1e-9);
    }

    #[test]
    fn strong_link_has_zero_per() {
        let scenario = UplinkScenario::fig10_bench(20.0, 1.0, 5.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (per, ber) = scenario.wifi_error_rates(31, 10, &mut rng).unwrap();
        assert_eq!(per.per(), 0.0, "strong link should deliver every packet");
        assert_eq!(ber.ber(), 0.0);
    }

    #[test]
    fn weak_link_loses_packets() {
        // 0 dBm source, tag 3 ft away, receiver 90 ft away: the link-budget
        // RSSI is near or below the Wi-Fi sensitivity, so most packets fail.
        let scenario = UplinkScenario::fig10_bench(0.0, 3.0, 90.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (per, _) = scenario.wifi_error_rates(31, 10, &mut rng).unwrap();
        assert!(per.per() > 0.5, "weak link PER {}", per.per());
    }

    #[test]
    fn per_is_monotone_in_distance_on_average() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let near = UplinkScenario::fig10_bench(4.0, 1.0, 20.0)
            .wifi_error_rates(31, 8, &mut rng)
            .unwrap()
            .0
            .per();
        let far = UplinkScenario::fig10_bench(4.0, 1.0, 85.0)
            .wifi_error_rates(31, 8, &mut rng)
            .unwrap()
            .0
            .per();
        assert!(far >= near, "near {near}, far {far}");
    }

    #[test]
    fn zigbee_scenario_delivers_packets_in_range() {
        let scenario = UplinkScenario::fig14_zigbee(5.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let rssi = scenario.rssi_dbm();
        let (ok, lqi) = scenario
            .simulate_zigbee_packet(&[0x42u8; 20], rssi, &mut rng)
            .unwrap();
        assert!(ok, "ZigBee packet should decode at 5 ft (RSSI {rssi} dBm)");
        assert!(lqi > 20);
    }

    #[test]
    fn target_mismatch_is_an_error() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let wifi = UplinkScenario::fig10_bench(0.0, 1.0, 10.0);
        assert!(wifi
            .simulate_zigbee_packet(&[0u8; 4], -50.0, &mut rng)
            .is_err());
        let zigbee = UplinkScenario::fig14_zigbee(5.0);
        assert!(zigbee
            .simulate_wifi_packet(&[0u8; 4], -50.0, &mut rng)
            .is_err());
    }

    #[test]
    fn double_sideband_link_is_weaker() {
        let ssb = UplinkScenario::fig10_bench(4.0, 1.0, 30.0);
        let mut dsb = ssb.clone();
        dsb.sideband = SidebandMode::Double;
        assert!(ssb.rssi_dbm() > dsb.rssi_dbm() + 2.0);
    }
}
