//! Barker-sequence spreading for 1 and 2 Mbps 802.11b.
//!
//! At the DSSS basic rates every symbol is spread by the 11-chip Barker
//! sequence, giving the 22 MHz-wide waveform and the ~10.4 dB processing
//! gain that lets 2 Mbps packets be decoded at low SNR — the property the
//! paper leans on when arguing that backscattered Wi-Fi needs only ~6 dB of
//! SNR (§4.2).

use interscatter_dsp::correlate::bipolar_correlation;
use interscatter_dsp::Cplx;

/// The 11-chip Barker sequence used by 802.11 DSSS, in chip order,
/// represented as ±1.
pub const BARKER_11: [i8; 11] = [1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1];

/// Number of chips per DSSS symbol at the Barker rates.
pub const CHIPS_PER_SYMBOL: usize = 11;

/// Spreads one complex symbol into 11 chips by multiplying it with the
/// Barker sequence.
pub fn spread_symbol(symbol: Cplx) -> Vec<Cplx> {
    BARKER_11.iter().map(|&c| symbol * f64::from(c)).collect()
}

/// Spreads a stream of symbols.
pub fn spread(symbols: &[Cplx]) -> Vec<Cplx> {
    symbols.iter().flat_map(|&s| spread_symbol(s)).collect()
}

/// Despreads a block of 11 received chips back into one symbol estimate by
/// correlating with the Barker sequence (matched filter). The output is
/// normalised by the sequence length so a noiseless round trip returns the
/// original symbol.
pub fn despread_symbol(chips: &[Cplx]) -> Cplx {
    assert_eq!(chips.len(), CHIPS_PER_SYMBOL, "expected 11 chips");
    let sum: Cplx = chips
        .iter()
        .zip(BARKER_11.iter())
        .map(|(&chip, &b)| chip * f64::from(b))
        .sum();
    sum / CHIPS_PER_SYMBOL as f64
}

/// Despreads a chip stream into symbol estimates. Trailing chips that do not
/// fill a whole symbol are ignored.
pub fn despread(chips: &[Cplx]) -> Vec<Cplx> {
    chips
        .chunks_exact(CHIPS_PER_SYMBOL)
        .map(despread_symbol)
        .collect()
}

/// Processing gain of the Barker spreading in dB (10·log10(11) ≈ 10.4 dB).
pub fn processing_gain_db() -> f64 {
    10.0 * (CHIPS_PER_SYMBOL as f64).log10()
}

/// The aperiodic autocorrelation of the Barker sequence at a given lag —
/// exposed for tests and documentation: |sidelobes| ≤ 1, which is what makes
/// symbol timing recovery easy.
pub fn autocorrelation(lag: usize) -> i32 {
    if lag >= CHIPS_PER_SYMBOL {
        return 0;
    }
    let shifted: Vec<i8> = BARKER_11[lag..].to_vec();
    bipolar_correlation(&shifted, &BARKER_11[..CHIPS_PER_SYMBOL - lag])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_has_unit_sidelobes() {
        assert_eq!(autocorrelation(0), 11);
        for lag in 1..11 {
            assert!(
                autocorrelation(lag).abs() <= 1,
                "lag {lag} sidelobe too high"
            );
        }
        assert_eq!(autocorrelation(11), 0);
    }

    #[test]
    fn spread_despread_round_trip() {
        let symbols = vec![
            Cplx::new(1.0, 0.0),
            Cplx::new(-1.0, 0.0),
            Cplx::new(0.0, 1.0),
            Cplx::new(-0.7, -0.7),
        ];
        let chips = spread(&symbols);
        assert_eq!(chips.len(), symbols.len() * 11);
        let back = despread(&chips);
        assert_eq!(back.len(), symbols.len());
        for (a, b) in symbols.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn despread_averages_noise() {
        // Adding independent noise to each chip should be attenuated by the
        // 11-chip average (processing gain).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let symbol = Cplx::new(1.0, 0.0);
        let mut chips = spread_symbol(symbol);
        let noise_amp = 0.5;
        for c in &mut chips {
            *c += Cplx::new(
                rng.gen_range(-noise_amp..noise_amp),
                rng.gen_range(-noise_amp..noise_amp),
            );
        }
        let est = despread_symbol(&chips);
        assert!(
            (est - symbol).abs() < noise_amp,
            "despreading should average out noise"
        );
    }

    #[test]
    fn processing_gain_is_about_10_4_db() {
        assert!((processing_gain_db() - 10.41).abs() < 0.05);
    }

    #[test]
    fn partial_symbols_are_dropped() {
        let chips = vec![Cplx::ONE; 25];
        assert_eq!(despread(&chips).len(), 2);
    }

    #[test]
    #[should_panic(expected = "11 chips")]
    fn despread_symbol_requires_11_chips() {
        let _ = despread_symbol(&[Cplx::ONE; 10]);
    }
}
