//! Complementary Code Keying (CCK) for 5.5 and 11 Mbps 802.11b.
//!
//! At the high rates each group of incoming bits selects an 8-chip complex
//! code word. The code word is built from four QPSK phases φ1..φ4:
//!
//! ```text
//! c = ( e^{j(φ1+φ2+φ3+φ4)},  e^{j(φ1+φ3+φ4)},  e^{j(φ1+φ2+φ4)}, −e^{j(φ1+φ4)},
//!       e^{j(φ1+φ2+φ3)},     e^{j(φ1+φ3)},    −e^{j(φ1+φ2)},     e^{jφ1} )
//! ```
//!
//! At 11 Mbps all four phases carry data (8 bits/code word); at 5.5 Mbps only
//! φ1 (differential, 2 bits) and a constrained mapping of 2 more bits are
//! used (4 bits/code word). φ1 is always differentially encoded relative to
//! the previous code word, with the extra 180° rotation on odd-numbered
//! code words required by the standard omitted here for clarity — the
//! receiver in this workspace uses the same convention, and the property the
//! paper relies on (pure phase modulation realisable with four impedance
//! states) is unaffected.

use interscatter_dsp::Cplx;

/// Chips per CCK code word.
pub const CHIPS_PER_CODEWORD: usize = 8;

/// Maps a dibit to a DQPSK phase *increment* for φ1 (same table as the
/// Barker rates).
fn dqpsk_increment(d0: u8, d1: u8) -> f64 {
    match (d0 & 1, d1 & 1) {
        (0, 0) => 0.0,
        (0, 1) => std::f64::consts::FRAC_PI_2,
        (1, 1) => std::f64::consts::PI,
        (1, 0) => 3.0 * std::f64::consts::FRAC_PI_2,
        _ => unreachable!(),
    }
}

/// Maps a dibit to an absolute QPSK phase for φ2..φ4 (11 Mbps).
fn qpsk_phase(d0: u8, d1: u8) -> f64 {
    match (d0 & 1, d1 & 1) {
        (0, 0) => 0.0,
        (0, 1) => std::f64::consts::FRAC_PI_2,
        (1, 0) => std::f64::consts::PI,
        (1, 1) => 3.0 * std::f64::consts::FRAC_PI_2,
        _ => unreachable!(),
    }
}

/// Builds the 8-chip CCK code word from the four phases.
pub fn codeword(phi1: f64, phi2: f64, phi3: f64, phi4: f64) -> [Cplx; 8] {
    [
        Cplx::expj(phi1 + phi2 + phi3 + phi4),
        Cplx::expj(phi1 + phi3 + phi4),
        Cplx::expj(phi1 + phi2 + phi4),
        -Cplx::expj(phi1 + phi4),
        Cplx::expj(phi1 + phi2 + phi3),
        Cplx::expj(phi1 + phi3),
        -Cplx::expj(phi1 + phi2),
        Cplx::expj(phi1),
    ]
}

/// A stateful CCK modulator (tracks the differential φ1 phase).
#[derive(Debug, Clone, Copy)]
pub struct CckModulator {
    phi1: f64,
}

impl CckModulator {
    /// Creates a modulator whose φ1 reference is the phase of the last
    /// header symbol.
    pub fn new(reference_phase: f64) -> Self {
        CckModulator {
            phi1: reference_phase,
        }
    }

    /// Encodes 8 bits into one 11 Mbps code word.
    pub fn encode_11mbps(&mut self, bits: &[u8]) -> [Cplx; 8] {
        assert_eq!(bits.len(), 8, "11 Mbps CCK consumes 8 bits per code word");
        self.phi1 += dqpsk_increment(bits[0], bits[1]);
        let phi2 = qpsk_phase(bits[2], bits[3]);
        let phi3 = qpsk_phase(bits[4], bits[5]);
        let phi4 = qpsk_phase(bits[6], bits[7]);
        codeword(self.phi1, phi2, phi3, phi4)
    }

    /// Encodes 4 bits into one 5.5 Mbps code word. Per the standard the last
    /// two bits choose among four specific (φ2, φ3, φ4) combinations.
    pub fn encode_5_5mbps(&mut self, bits: &[u8]) -> [Cplx; 8] {
        assert_eq!(bits.len(), 4, "5.5 Mbps CCK consumes 4 bits per code word");
        self.phi1 += dqpsk_increment(bits[0], bits[1]);
        let (phi2, phi3, phi4) = match (bits[2] & 1, bits[3] & 1) {
            (0, 0) => (std::f64::consts::FRAC_PI_2, 0.0, 0.0),
            (0, 1) => (3.0 * std::f64::consts::FRAC_PI_2, 0.0, 0.0),
            (1, 0) => (std::f64::consts::FRAC_PI_2, 0.0, std::f64::consts::PI),
            (1, 1) => (3.0 * std::f64::consts::FRAC_PI_2, 0.0, std::f64::consts::PI),
            _ => unreachable!(),
        };
        codeword(self.phi1, phi2, phi3, phi4)
    }

    /// Encodes a full bit stream at 11 Mbps (length must be a multiple of 8).
    pub fn encode_stream_11mbps(&mut self, bits: &[u8]) -> Vec<Cplx> {
        assert_eq!(bits.len() % 8, 0);
        bits.chunks(8).flat_map(|c| self.encode_11mbps(c)).collect()
    }

    /// Encodes a full bit stream at 5.5 Mbps (length must be a multiple of 4).
    pub fn encode_stream_5_5mbps(&mut self, bits: &[u8]) -> Vec<Cplx> {
        assert_eq!(bits.len() % 4, 0);
        bits.chunks(4)
            .flat_map(|c| self.encode_5_5mbps(c))
            .collect()
    }
}

/// A CCK demodulator: correlates each received 8-chip block against all
/// candidate code words and picks the best, mirroring the modulator state.
#[derive(Debug, Clone, Copy)]
pub struct CckDemodulator {
    phi1: f64,
}

impl CckDemodulator {
    /// Creates a demodulator with the same φ1 reference as the modulator.
    pub fn new(reference_phase: f64) -> Self {
        CckDemodulator {
            phi1: reference_phase,
        }
    }

    fn best_candidate(
        &mut self,
        chips: &[Cplx],
        candidates: &[(Vec<u8>, f64, f64, f64, f64)],
    ) -> Vec<u8> {
        let mut best_metric = f64::MIN;
        let mut best_bits = Vec::new();
        let mut best_phi1 = self.phi1;
        for (bits, dphi1, phi2, phi3, phi4) in candidates {
            let phi1 = self.phi1 + dphi1;
            let cw = codeword(phi1, *phi2, *phi3, *phi4);
            // Coherent correlation metric.
            let metric: f64 = chips
                .iter()
                .zip(cw.iter())
                .map(|(&r, &c)| (r * c.conj()).re)
                .sum();
            if metric > best_metric {
                best_metric = metric;
                best_bits = bits.clone();
                best_phi1 = phi1;
            }
        }
        self.phi1 = best_phi1;
        best_bits
    }

    /// Decodes one 8-chip block at 11 Mbps (256 candidate code words).
    pub fn decode_11mbps(&mut self, chips: &[Cplx]) -> Vec<u8> {
        assert_eq!(chips.len(), 8);
        let mut candidates = Vec::with_capacity(256);
        for v in 0..256u32 {
            let bits: Vec<u8> = (0..8).map(|i| ((v >> i) & 1) as u8).collect();
            let dphi1 = dqpsk_increment(bits[0], bits[1]);
            let phi2 = qpsk_phase(bits[2], bits[3]);
            let phi3 = qpsk_phase(bits[4], bits[5]);
            let phi4 = qpsk_phase(bits[6], bits[7]);
            candidates.push((bits, dphi1, phi2, phi3, phi4));
        }
        self.best_candidate(chips, &candidates)
    }

    /// Decodes one 8-chip block at 5.5 Mbps (16 candidate code words).
    pub fn decode_5_5mbps(&mut self, chips: &[Cplx]) -> Vec<u8> {
        assert_eq!(chips.len(), 8);
        let mut candidates = Vec::with_capacity(16);
        for v in 0..16u32 {
            let bits: Vec<u8> = (0..4).map(|i| ((v >> i) & 1) as u8).collect();
            let dphi1 = dqpsk_increment(bits[0], bits[1]);
            let (phi2, phi3, phi4) = match (bits[2] & 1, bits[3] & 1) {
                (0, 0) => (std::f64::consts::FRAC_PI_2, 0.0, 0.0),
                (0, 1) => (3.0 * std::f64::consts::FRAC_PI_2, 0.0, 0.0),
                (1, 0) => (std::f64::consts::FRAC_PI_2, 0.0, std::f64::consts::PI),
                (1, 1) => (3.0 * std::f64::consts::FRAC_PI_2, 0.0, std::f64::consts::PI),
                _ => unreachable!(),
            };
            candidates.push((bits, dphi1, phi2, phi3, phi4));
        }
        self.best_candidate(chips, &candidates)
    }

    /// Decodes a chip stream at 11 Mbps.
    pub fn decode_stream_11mbps(&mut self, chips: &[Cplx]) -> Vec<u8> {
        chips
            .chunks_exact(8)
            .flat_map(|block| self.decode_11mbps(block))
            .collect()
    }

    /// Decodes a chip stream at 5.5 Mbps.
    pub fn decode_stream_5_5mbps(&mut self, chips: &[Cplx]) -> Vec<u8> {
        chips
            .chunks_exact(8)
            .flat_map(|block| self.decode_5_5mbps(block))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn codeword_chips_have_unit_magnitude() {
        let cw = codeword(0.3, 1.1, 2.0, -0.7);
        for chip in &cw {
            assert!((chip.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cck_11mbps_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let bits: Vec<u8> = (0..8 * 40).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut modulator = CckModulator::new(0.0);
        let chips = modulator.encode_stream_11mbps(&bits);
        assert_eq!(chips.len(), bits.len());
        let mut demod = CckDemodulator::new(0.0);
        assert_eq!(demod.decode_stream_11mbps(&chips), bits);
    }

    #[test]
    fn cck_5_5mbps_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let bits: Vec<u8> = (0..4 * 50).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut modulator = CckModulator::new(0.5);
        let chips = modulator.encode_stream_5_5mbps(&bits);
        assert_eq!(chips.len(), bits.len() * 2);
        let mut demod = CckDemodulator::new(0.5);
        assert_eq!(demod.decode_stream_5_5mbps(&chips), bits);
    }

    #[test]
    fn cck_round_trip_survives_constant_rotation_and_scaling() {
        // Same robustness argument as DQPSK: the tag's constellation offset
        // and the backscatter attenuation are common to all chips. A constant
        // rotation does shift the correlation metric equally for all
        // candidates of the *current* code word, but because φ1 is tracked
        // differentially the decoder locks to the rotated reference after the
        // first code word; we rotate the reference accordingly here.
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let bits: Vec<u8> = (0..8 * 20).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut modulator = CckModulator::new(0.0);
        let rotation = std::f64::consts::FRAC_PI_4;
        let chips: Vec<Cplx> = modulator
            .encode_stream_11mbps(&bits)
            .iter()
            .map(|&c| c * Cplx::expj(rotation) * 2e-3)
            .collect();
        let mut demod = CckDemodulator::new(rotation);
        assert_eq!(demod.decode_stream_11mbps(&chips), bits);
    }

    #[test]
    fn cck_tolerates_moderate_noise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        let bits: Vec<u8> = (0..8 * 30).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut modulator = CckModulator::new(0.0);
        let mut chips = modulator.encode_stream_11mbps(&bits);
        for c in &mut chips {
            *c += Cplx::new(rng.gen_range(-0.3..0.3), rng.gen_range(-0.3..0.3));
        }
        let mut demod = CckDemodulator::new(0.0);
        assert_eq!(demod.decode_stream_11mbps(&chips), bits);
    }

    #[test]
    fn different_codewords_are_distinguishable() {
        // All 256 11 Mbps code words (for a fixed φ1) must be distinct.
        let mut words: Vec<[Cplx; 8]> = Vec::new();
        for v in 0..256u32 {
            let bits: Vec<u8> = (0..8).map(|i| ((v >> i) & 1) as u8).collect();
            let mut m = CckModulator::new(0.0);
            words.push(m.encode_11mbps(&bits));
        }
        for i in 0..words.len() {
            for j in (i + 1)..words.len() {
                let dist: f64 = words[i]
                    .iter()
                    .zip(words[j].iter())
                    .map(|(a, b)| (*a - *b).norm_sq())
                    .sum();
                assert!(dist > 1e-9, "code words {i} and {j} identical");
            }
        }
    }

    #[test]
    #[should_panic(expected = "8 bits")]
    fn wrong_bit_count_panics() {
        let mut m = CckModulator::new(0.0);
        let _ = m.encode_11mbps(&[1, 0, 1]);
    }
}
