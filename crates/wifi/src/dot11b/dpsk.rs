//! Differential BPSK / QPSK for 802.11b.
//!
//! 802.11b conveys information in the *phase change* between consecutive
//! symbols rather than in absolute phase. This is exactly why the
//! backscatter tag can ignore the constant π/4 rotation between its four
//! achievable impedance points {1+j, 1−j, −1+j, −1−j} and the nominal QPSK
//! points {1, j, −1, −j} (paper §2.3.2): a constant rotation cancels in the
//! differential decoder.

use interscatter_dsp::Cplx;

/// Differential phase encoder used for both DBPSK (1 bit/symbol) and DQPSK
/// (2 bits/symbol).
#[derive(Debug, Clone, Copy)]
pub struct DifferentialEncoder {
    phase: f64,
}

/// Phase increments for DQPSK dibits per IEEE 802.11-2016 (Table 16-2),
/// dibit order (d0, d1): 00 -> 0, 01 -> π/2, 11 -> π, 10 -> 3π/2.
fn dqpsk_phase(d0: u8, d1: u8) -> f64 {
    match (d0 & 1, d1 & 1) {
        (0, 0) => 0.0,
        (0, 1) => std::f64::consts::FRAC_PI_2,
        (1, 1) => std::f64::consts::PI,
        (1, 0) => 3.0 * std::f64::consts::FRAC_PI_2,
        _ => unreachable!(),
    }
}

/// Phase increment for a DBPSK bit: 0 -> 0, 1 -> π.
fn dbpsk_phase(bit: u8) -> f64 {
    if bit & 1 == 1 {
        std::f64::consts::PI
    } else {
        0.0
    }
}

impl DifferentialEncoder {
    /// Creates an encoder with the given reference phase (the phase of the
    /// last preamble/header symbol).
    pub fn new(initial_phase: f64) -> Self {
        DifferentialEncoder {
            phase: initial_phase,
        }
    }

    /// Current accumulated phase.
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Encodes a DBPSK bit, returning the next symbol.
    pub fn encode_dbpsk(&mut self, bit: u8) -> Cplx {
        self.phase += dbpsk_phase(bit);
        Cplx::expj(self.phase)
    }

    /// Encodes a DQPSK dibit, returning the next symbol.
    pub fn encode_dqpsk(&mut self, d0: u8, d1: u8) -> Cplx {
        self.phase += dqpsk_phase(d0, d1);
        Cplx::expj(self.phase)
    }

    /// Encodes a full bit stream as DBPSK symbols.
    pub fn encode_dbpsk_stream(&mut self, bits: &[u8]) -> Vec<Cplx> {
        bits.iter().map(|&b| self.encode_dbpsk(b)).collect()
    }

    /// Encodes a full bit stream as DQPSK symbols; the bit count must be
    /// even.
    ///
    /// # Panics
    /// Panics on an odd number of bits (framing always produces whole
    /// octets).
    pub fn encode_dqpsk_stream(&mut self, bits: &[u8]) -> Vec<Cplx> {
        assert_eq!(bits.len() % 2, 0, "DQPSK needs an even number of bits");
        bits.chunks(2)
            .map(|d| self.encode_dqpsk(d[0], d[1]))
            .collect()
    }
}

/// Differential decoder: recovers bits from the phase difference between
/// consecutive symbols.
#[derive(Debug, Clone, Copy)]
pub struct DifferentialDecoder {
    previous: Cplx,
}

impl DifferentialDecoder {
    /// Creates a decoder seeded with the reference symbol (the last symbol
    /// of the preceding field).
    pub fn new(reference: Cplx) -> Self {
        DifferentialDecoder {
            previous: reference,
        }
    }

    /// Decodes one DBPSK symbol into a bit.
    pub fn decode_dbpsk(&mut self, symbol: Cplx) -> u8 {
        let diff = (symbol * self.previous.conj()).arg();
        self.previous = symbol;
        u8::from(diff.abs() > std::f64::consts::FRAC_PI_2)
    }

    /// Decodes one DQPSK symbol into a dibit.
    pub fn decode_dqpsk(&mut self, symbol: Cplx) -> (u8, u8) {
        let diff = (symbol * self.previous.conj()).arg();
        self.previous = symbol;
        // Quantise the phase difference to the nearest multiple of π/2.
        let sector = ((diff / std::f64::consts::FRAC_PI_2).round().rem_euclid(4.0)) as u8;
        match sector {
            0 => (0, 0),
            1 => (0, 1),
            2 => (1, 1),
            3 => (1, 0),
            _ => unreachable!(),
        }
    }

    /// Decodes a DBPSK symbol stream.
    pub fn decode_dbpsk_stream(&mut self, symbols: &[Cplx]) -> Vec<u8> {
        symbols.iter().map(|&s| self.decode_dbpsk(s)).collect()
    }

    /// Decodes a DQPSK symbol stream.
    pub fn decode_dqpsk_stream(&mut self, symbols: &[Cplx]) -> Vec<u8> {
        symbols
            .iter()
            .flat_map(|&s| {
                let (a, b) = self.decode_dqpsk(s);
                [a, b]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dbpsk_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let bits: Vec<u8> = (0..200).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut enc = DifferentialEncoder::new(0.0);
        let reference = Cplx::expj(0.0);
        let symbols = enc.encode_dbpsk_stream(&bits);
        let mut dec = DifferentialDecoder::new(reference);
        assert_eq!(dec.decode_dbpsk_stream(&symbols), bits);
    }

    #[test]
    fn dqpsk_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let bits: Vec<u8> = (0..400).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut enc = DifferentialEncoder::new(0.3);
        let reference = Cplx::expj(0.3);
        let symbols = enc.encode_dqpsk_stream(&bits);
        let mut dec = DifferentialDecoder::new(reference);
        assert_eq!(dec.decode_dqpsk_stream(&symbols), bits);
    }

    #[test]
    fn constant_rotation_is_transparent() {
        // The tag's π/4-rotated constellation: rotating every symbol (and the
        // reference) by a constant must not change the decoded bits. This is
        // the paper's argument for mapping {1,j,-1,-j} onto {1+j,1-j,-1+j,-1-j}.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bits: Vec<u8> = (0..300).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut enc = DifferentialEncoder::new(0.0);
        let symbols = enc.encode_dqpsk_stream(&bits);
        let rotation = Cplx::expj(std::f64::consts::FRAC_PI_4);
        let rotated: Vec<Cplx> = symbols.iter().map(|&s| s * rotation).collect();
        let mut dec = DifferentialDecoder::new(Cplx::expj(0.0) * rotation);
        assert_eq!(dec.decode_dqpsk_stream(&rotated), bits);
    }

    #[test]
    fn amplitude_scaling_is_transparent() {
        // Backscattered signals are much weaker than regular Wi-Fi; the
        // differential decoder only uses phase.
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let mut enc = DifferentialEncoder::new(1.0);
        let symbols: Vec<Cplx> = enc
            .encode_dqpsk_stream(&bits)
            .iter()
            .map(|&s| s * 1e-4)
            .collect();
        let mut dec = DifferentialDecoder::new(Cplx::expj(1.0) * 1e-4);
        assert_eq!(dec.decode_dqpsk_stream(&symbols), bits);
    }

    #[test]
    fn phase_increments_match_the_standard() {
        assert_eq!(dqpsk_phase(0, 0), 0.0);
        assert_eq!(dqpsk_phase(0, 1), std::f64::consts::FRAC_PI_2);
        assert_eq!(dqpsk_phase(1, 1), std::f64::consts::PI);
        assert_eq!(dqpsk_phase(1, 0), 3.0 * std::f64::consts::FRAC_PI_2);
        assert_eq!(dbpsk_phase(0), 0.0);
        assert_eq!(dbpsk_phase(1), std::f64::consts::PI);
    }

    #[test]
    fn encoder_accumulates_phase() {
        let mut enc = DifferentialEncoder::new(0.0);
        let _ = enc.encode_dqpsk(1, 1); // +π
        let _ = enc.encode_dqpsk(1, 1); // +π
                                        // Total 2π: back to the start.
        assert!((Cplx::expj(enc.phase()) - Cplx::ONE).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "even number")]
    fn odd_dqpsk_bits_panic() {
        let mut enc = DifferentialEncoder::new(0.0);
        let _ = enc.encode_dqpsk_stream(&[1, 0, 1]);
    }
}
