//! The 802.11b DSSS/CCK physical layer.
//!
//! This is the waveform the backscatter tag synthesizes (paper §2.3.2): data
//! bits are scrambled, spread — with the 11-chip Barker sequence at 1 and
//! 2 Mbps or with 8-chip CCK code words at 5.5 and 11 Mbps — and phase
//! modulated with DBPSK or DQPSK. Because the modulation is differential,
//! the tag's four complex impedance states can represent every required
//! constellation point up to an irrelevant constant π/4 rotation.
//!
//! Sub-modules:
//!
//! * [`scrambler`] — the self-synchronising 802.11b scrambler.
//! * [`barker`] — Barker-sequence spreading and despreading.
//! * [`cck`] — complementary-code-keying code words for 5.5/11 Mbps.
//! * [`dpsk`] — differential BPSK/QPSK encoding and decoding.
//! * [`plcp`] — long-preamble PLCP framing (sync, SFD, header, CRC-16).
//! * [`rates`] — rate/timing arithmetic, including how many payload bytes
//!   fit inside one Bluetooth advertising packet (§2.3.3).
//! * [`tx`] / [`rx`] — the complete baseband transmitter and receiver.

pub mod barker;
pub mod cck;
pub mod dpsk;
pub mod plcp;
pub mod rates;
pub mod rx;
pub mod scrambler;
pub mod tx;

pub use rates::DsssRate;
pub use rx::{Dot11bReceiver, ReceivedFrame};
pub use tx::Dot11bTransmitter;

/// 802.11b chip rate: 11 Mchip/s for every rate.
pub const CHIP_RATE: f64 = 11e6;

/// Occupied bandwidth of an 802.11b channel in Hz.
pub const CHANNEL_BANDWIDTH_HZ: f64 = 22e6;
