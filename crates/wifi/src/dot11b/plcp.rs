//! PLCP (Physical Layer Convergence Procedure) framing for 802.11b.
//!
//! Every 802.11b PPDU begins with a preamble and a header that are always
//! sent at 1 Mbps DBPSK (long preamble) so that any receiver can decode the
//! rate and length of the payload that follows. The backscatter tag must
//! synthesize this framing for the packet to be "standards-compliant" and
//! accepted by a commodity Wi-Fi card.
//!
//! Long preamble format:
//!
//! * SYNC: 128 scrambled `1` bits,
//! * SFD: `0xF3A0` (transmitted LSB-first),
//! * PLCP header: SIGNAL (8 bits), SERVICE (8 bits), LENGTH (16 bits,
//!   microseconds of payload airtime), CRC-16 over the header fields.

use super::rates::DsssRate;
use crate::WifiError;
use interscatter_dsp::bits::{bits_to_u32_lsb, bytes_to_bits_lsb, u32_to_bits_lsb};
use interscatter_dsp::crc::crc16_ccitt;

/// Number of SYNC bits in the long preamble.
pub const LONG_SYNC_BITS: usize = 128;

/// The long-preamble start-frame delimiter, transmitted LSB first.
pub const LONG_SFD: u16 = 0xF3A0;

/// Number of bits in the PLCP header (SIGNAL + SERVICE + LENGTH + CRC).
pub const PLCP_HEADER_BITS: usize = 48;

/// Total number of 1 Mbps bits in the long preamble + header.
pub const LONG_PREAMBLE_HEADER_BITS: usize = LONG_SYNC_BITS + 16 + PLCP_HEADER_BITS;

/// The decoded contents of a PLCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlcpHeader {
    /// PSDU rate.
    pub rate: DsssRate,
    /// SERVICE field (bit 2 = locked clocks, bit 7 = length extension for
    /// 11 Mbps; zero in this workspace).
    pub service: u8,
    /// PSDU airtime in microseconds.
    pub length_us: u16,
}

impl PlcpHeader {
    /// Builds the header for a payload of `psdu_bytes` at `rate`.
    ///
    /// At 11 Mbps the LENGTH field (microseconds, rounded up) can be
    /// ambiguous by one octet; per the standard, bit 7 of the SERVICE field
    /// (the length-extension bit) disambiguates it.
    pub fn for_payload(rate: DsssRate, psdu_bytes: usize) -> Result<Self, WifiError> {
        let airtime_us = (psdu_bytes as f64 * 8.0 / rate.bits_per_second() * 1e6).ceil();
        if airtime_us > f64::from(u16::MAX) {
            return Err(WifiError::PayloadTooLong {
                requested: psdu_bytes,
                max: (f64::from(u16::MAX) * 1e-6 * rate.bits_per_second() / 8.0) as usize,
            });
        }
        let length_us = airtime_us as u16;
        let mut service = 0u8;
        if rate == DsssRate::Mbps11 {
            let implied = (f64::from(length_us) * 11.0 / 8.0 + 1e-9).floor() as usize;
            if implied > psdu_bytes {
                service |= 0x80;
            }
        }
        Ok(PlcpHeader {
            rate,
            service,
            length_us,
        })
    }

    /// Number of PSDU bytes implied by the header (inverse of
    /// [`PlcpHeader::for_payload`]).
    pub fn psdu_bytes(&self) -> usize {
        // The small epsilon keeps exact-airtime cases (e.g. 15 bytes at
        // 2 Mbps = 60 µs) from landing a hair below the integer and losing a
        // byte to the floor; at 11 Mbps the length-extension bit in the
        // SERVICE field removes the remaining one-octet ambiguity.
        let implied = (f64::from(self.length_us) * 1e-6 * self.rate.bits_per_second() / 8.0 + 1e-9)
            .floor() as usize;
        if self.rate == DsssRate::Mbps11 && (self.service & 0x80) != 0 {
            implied.saturating_sub(1)
        } else {
            implied
        }
    }

    /// Serialises the header to its 48 unscrambled bits (LSB-first fields,
    /// CRC-16 appended).
    pub fn to_bits(&self) -> Vec<u8> {
        let mut fields = Vec::with_capacity(4);
        fields.push(self.rate.plcp_signal_field());
        fields.push(self.service);
        fields.extend_from_slice(&self.length_us.to_le_bytes());
        let crc = crc16_ccitt(&fields);
        let mut bits = bytes_to_bits_lsb(&fields);
        bits.extend(u32_to_bits_lsb(u32::from(crc), 16));
        bits
    }

    /// Parses and validates 48 header bits.
    pub fn from_bits(bits: &[u8]) -> Result<Self, WifiError> {
        if bits.len() < PLCP_HEADER_BITS {
            return Err(WifiError::TruncatedWaveform {
                have: bits.len(),
                need: PLCP_HEADER_BITS,
            });
        }
        let signal = bits_to_u32_lsb(&bits[0..8]) as u8;
        let service = bits_to_u32_lsb(&bits[8..16]) as u8;
        let length_us = bits_to_u32_lsb(&bits[16..32]) as u16;
        let crc = bits_to_u32_lsb(&bits[32..48]) as u16;
        let mut fields = vec![signal, service];
        fields.extend_from_slice(&length_us.to_le_bytes());
        if crc16_ccitt(&fields) != crc {
            return Err(WifiError::InvalidHeader("PLCP header CRC mismatch"));
        }
        let rate = DsssRate::from_plcp_signal_field(signal)?;
        Ok(PlcpHeader {
            rate,
            service,
            length_us,
        })
    }
}

/// The unscrambled bit content of the long preamble: 128 ones followed by
/// the SFD (LSB first).
pub fn long_preamble_bits() -> Vec<u8> {
    let mut bits = vec![1u8; LONG_SYNC_BITS];
    bits.extend(u32_to_bits_lsb(u32::from(LONG_SFD), 16));
    bits
}

/// Locates the SFD in a descrambled 1 Mbps bit stream, returning the index
/// of the first bit *after* the SFD (i.e. the start of the PLCP header).
pub fn find_sfd(bits: &[u8]) -> Result<usize, WifiError> {
    let sfd = u32_to_bits_lsb(u32::from(LONG_SFD), 16);
    if bits.len() < sfd.len() {
        return Err(WifiError::PreambleNotFound);
    }
    for start in 0..=bits.len() - sfd.len() {
        if bits[start..start + sfd.len()] == sfd[..] {
            return Ok(start + sfd.len());
        }
    }
    Err(WifiError::PreambleNotFound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_for_all_rates() {
        for rate in DsssRate::ALL {
            let h = PlcpHeader::for_payload(rate, 77).unwrap();
            let bits = h.to_bits();
            assert_eq!(bits.len(), PLCP_HEADER_BITS);
            let back = PlcpHeader::from_bits(&bits).unwrap();
            assert_eq!(back, h);
            // Recovered byte count matches (within rounding of the µs field).
            assert!((back.psdu_bytes() as i64 - 77).abs() <= 1, "rate {rate:?}");
        }
    }

    #[test]
    fn header_crc_detects_corruption() {
        let h = PlcpHeader::for_payload(DsssRate::Mbps2, 31).unwrap();
        let mut bits = h.to_bits();
        bits[5] ^= 1;
        assert!(matches!(
            PlcpHeader::from_bits(&bits),
            Err(WifiError::InvalidHeader(_))
        ));
    }

    #[test]
    fn header_length_is_airtime_in_microseconds() {
        // 31 bytes at 2 Mbps = 124 µs; 77 bytes at 11 Mbps = 56 µs.
        assert_eq!(
            PlcpHeader::for_payload(DsssRate::Mbps2, 31)
                .unwrap()
                .length_us,
            124
        );
        assert_eq!(
            PlcpHeader::for_payload(DsssRate::Mbps11, 77)
                .unwrap()
                .length_us,
            56
        );
    }

    #[test]
    fn oversized_payload_is_rejected() {
        // 65536 µs at 1 Mbps would overflow the 16-bit length field.
        assert!(PlcpHeader::for_payload(DsssRate::Mbps1, 10_000).is_err());
    }

    #[test]
    fn preamble_bits_and_sfd_detection() {
        let bits = long_preamble_bits();
        assert_eq!(bits.len(), LONG_SYNC_BITS + 16);
        assert!(bits[..128].iter().all(|&b| b == 1));
        let after = find_sfd(&bits).unwrap();
        assert_eq!(after, bits.len());
    }

    #[test]
    fn sfd_not_found_in_random_ones() {
        let bits = vec![1u8; 200];
        assert!(matches!(find_sfd(&bits), Err(WifiError::PreambleNotFound)));
        assert!(matches!(
            find_sfd(&bits[..4]),
            Err(WifiError::PreambleNotFound)
        ));
    }

    #[test]
    fn truncated_header_is_rejected() {
        let h = PlcpHeader::for_payload(DsssRate::Mbps5_5, 10).unwrap();
        let bits = h.to_bits();
        assert!(matches!(
            PlcpHeader::from_bits(&bits[..30]),
            Err(WifiError::TruncatedWaveform { .. })
        ));
    }
}
