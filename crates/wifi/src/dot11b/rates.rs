//! 802.11b rate and timing arithmetic.
//!
//! The table in §2.3.3 of the paper follows directly from this arithmetic:
//! a Bluetooth advertising payload lasts at most 248 µs, so after the
//! 96 µs short PLCP preamble+header the remaining airtime bounds the Wi-Fi
//! PSDU to roughly 38 bytes at 2 Mbps, 104 bytes at 5.5 Mbps, and 209 bytes
//! at 11 Mbps — and a 1 Mbps packet cannot fit at all.

use crate::WifiError;

/// The four 802.11b data rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DsssRate {
    /// 1 Mbps: Barker spreading, DBPSK.
    Mbps1,
    /// 2 Mbps: Barker spreading, DQPSK.
    Mbps2,
    /// 5.5 Mbps: CCK, 4 bits per code word.
    Mbps5_5,
    /// 11 Mbps: CCK, 8 bits per code word.
    Mbps11,
}

impl DsssRate {
    /// All four rates, slowest first.
    pub const ALL: [DsssRate; 4] = [
        DsssRate::Mbps1,
        DsssRate::Mbps2,
        DsssRate::Mbps5_5,
        DsssRate::Mbps11,
    ];

    /// Data rate in bits per second.
    pub fn bits_per_second(self) -> f64 {
        match self {
            DsssRate::Mbps1 => 1e6,
            DsssRate::Mbps2 => 2e6,
            DsssRate::Mbps5_5 => 5.5e6,
            DsssRate::Mbps11 => 11e6,
        }
    }

    /// Data bits carried per modulation symbol (per 11-chip Barker symbol or
    /// per 8-chip CCK code word).
    pub fn bits_per_symbol(self) -> usize {
        match self {
            DsssRate::Mbps1 => 1,
            DsssRate::Mbps2 => 2,
            DsssRate::Mbps5_5 => 4,
            DsssRate::Mbps11 => 8,
        }
    }

    /// Chips per modulation symbol.
    pub fn chips_per_symbol(self) -> usize {
        match self {
            DsssRate::Mbps1 | DsssRate::Mbps2 => 11,
            DsssRate::Mbps5_5 | DsssRate::Mbps11 => 8,
        }
    }

    /// Symbol rate in symbols per second (1 MSps for Barker, 1.375 MSps for
    /// CCK).
    pub fn symbols_per_second(self) -> f64 {
        self.bits_per_second() / self.bits_per_symbol() as f64
    }

    /// The SIGNAL field value identifying the rate in the PLCP header
    /// (rate in units of 100 kbps).
    pub fn plcp_signal_field(self) -> u8 {
        match self {
            DsssRate::Mbps1 => 0x0A,
            DsssRate::Mbps2 => 0x14,
            DsssRate::Mbps5_5 => 0x37,
            DsssRate::Mbps11 => 0x6E,
        }
    }

    /// Parses a SIGNAL field back into a rate.
    pub fn from_plcp_signal_field(value: u8) -> Result<Self, WifiError> {
        match value {
            0x0A => Ok(DsssRate::Mbps1),
            0x14 => Ok(DsssRate::Mbps2),
            0x37 => Ok(DsssRate::Mbps5_5),
            0x6E => Ok(DsssRate::Mbps11),
            _ => Err(WifiError::InvalidHeader("unknown SIGNAL rate")),
        }
    }

    /// Airtime in seconds for a PSDU of `payload_bytes` at this rate
    /// (payload only, excluding the PLCP preamble and header).
    pub fn payload_airtime_s(self, payload_bytes: usize) -> f64 {
        payload_bytes as f64 * 8.0 / self.bits_per_second()
    }

    /// The largest PSDU (in bytes) whose airtime fits within `window_s`
    /// seconds.
    pub fn max_payload_bytes_in(self, window_s: f64) -> usize {
        if window_s <= 0.0 {
            return 0;
        }
        ((window_s * self.bits_per_second()) / 8.0).floor() as usize
    }
}

/// Duration of the short PLCP preamble + header in seconds (72 bits at
/// 1 Mbps + 48 bits at 2 Mbps = 96 µs).
pub const SHORT_PLCP_DURATION_S: f64 = 96e-6;

/// Duration of the long PLCP preamble + header in seconds (144 + 48 bits at
/// 1 Mbps = 192 µs).
pub const LONG_PLCP_DURATION_S: f64 = 192e-6;

/// How many Wi-Fi payload bytes fit within a single Bluetooth advertising
/// payload window of `ble_window_s` seconds, assuming the short PLCP
/// preamble+header occupies the first 96 µs of the window. This reproduces
/// the packet-size table in §2.3.3 of the paper. Returns `None` when not even
/// an empty PSDU fits (the 1 Mbps case).
pub fn payload_fit_in_ble_window(rate: DsssRate, ble_window_s: f64) -> Option<usize> {
    let remaining = ble_window_s - SHORT_PLCP_DURATION_S;
    if remaining <= 0.0 {
        return None;
    }
    let bytes = rate.max_payload_bytes_in(remaining);
    // A useful PSDU needs at least a minimal MAC header (24 bytes) plus the
    // 4-byte FCS; anything smaller cannot carry data, which is why the paper
    // concludes a 1 Mbps packet does not fit in one advertising payload.
    if bytes <= 28 {
        None
    } else {
        Some(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Maximum BLE advertising payload duration (31 bytes × 8 µs); kept as a
    /// local constant so this crate does not depend on the BLE crate.
    const MAX_PAYLOAD_DURATION_S: f64 = 248e-6;

    #[test]
    fn rate_arithmetic() {
        assert_eq!(DsssRate::Mbps1.bits_per_symbol(), 1);
        assert_eq!(DsssRate::Mbps2.bits_per_symbol(), 2);
        assert_eq!(DsssRate::Mbps5_5.bits_per_symbol(), 4);
        assert_eq!(DsssRate::Mbps11.bits_per_symbol(), 8);
        assert_eq!(DsssRate::Mbps2.chips_per_symbol(), 11);
        assert_eq!(DsssRate::Mbps11.chips_per_symbol(), 8);
        assert!((DsssRate::Mbps1.symbols_per_second() - 1e6).abs() < 1.0);
        assert!((DsssRate::Mbps2.symbols_per_second() - 1e6).abs() < 1.0);
        assert!((DsssRate::Mbps5_5.symbols_per_second() - 1.375e6).abs() < 1.0);
        assert!((DsssRate::Mbps11.symbols_per_second() - 1.375e6).abs() < 1.0);
    }

    #[test]
    fn plcp_signal_fields_round_trip() {
        for rate in DsssRate::ALL {
            assert_eq!(
                DsssRate::from_plcp_signal_field(rate.plcp_signal_field()).unwrap(),
                rate
            );
        }
        assert!(DsssRate::from_plcp_signal_field(0x55).is_err());
    }

    #[test]
    fn paper_packet_fit_table() {
        // §2.3.3: within one 31-byte (248 µs) BLE advertising payload, the
        // Wi-Fi payload can be ~38, ~104 and ~209 bytes at 2, 5.5 and
        // 11 Mbps, and a 1 Mbps packet does not fit.
        let window = MAX_PAYLOAD_DURATION_S;
        assert_eq!(payload_fit_in_ble_window(DsssRate::Mbps1, window), None);
        let b2 = payload_fit_in_ble_window(DsssRate::Mbps2, window).unwrap();
        let b55 = payload_fit_in_ble_window(DsssRate::Mbps5_5, window).unwrap();
        let b11 = payload_fit_in_ble_window(DsssRate::Mbps11, window).unwrap();
        assert!((36..=40).contains(&b2), "2 Mbps fit {b2} bytes");
        assert!((100..=108).contains(&b55), "5.5 Mbps fit {b55} bytes");
        assert!((205..=212).contains(&b11), "11 Mbps fit {b11} bytes");
    }

    #[test]
    fn airtime_is_inverse_of_fit() {
        for rate in DsssRate::ALL {
            let bytes = 50;
            let t = rate.payload_airtime_s(bytes);
            assert!(rate.max_payload_bytes_in(t) >= bytes);
            assert!(rate.max_payload_bytes_in(t) <= bytes + 1);
        }
        assert_eq!(DsssRate::Mbps2.max_payload_bytes_in(-1.0), 0);
    }

    #[test]
    fn empty_window_fits_nothing() {
        assert_eq!(payload_fit_in_ble_window(DsssRate::Mbps11, 50e-6), None);
        assert_eq!(payload_fit_in_ble_window(DsssRate::Mbps11, 0.0), None);
    }

    #[test]
    fn plcp_durations() {
        assert!((SHORT_PLCP_DURATION_S - 96e-6).abs() < 1e-12);
        assert!((LONG_PLCP_DURATION_S - 192e-6).abs() < 1e-12);
    }
}
