//! The 802.11b baseband receiver.
//!
//! Models the commodity Wi-Fi card (an Intel Link 5300 in the paper's
//! experiments) that receives the backscatter-generated packets: it detects
//! the long preamble, decodes the PLCP header at 1 Mbps, then despreads and
//! demodulates the PSDU at the signalled rate, verifies the FCS, and reports
//! RSSI. The packet-error-rate measurements of Fig. 11 run this receiver
//! over noisy channels.

use super::barker;
use super::cck::CckDemodulator;
use super::dpsk::DifferentialDecoder;
use super::plcp::{find_sfd, PlcpHeader, LONG_SYNC_BITS, PLCP_HEADER_BITS};
use super::rates::DsssRate;
use super::scrambler::DsssScrambler;
use super::tx::Dot11bFrame;
use crate::WifiError;
use interscatter_dsp::bits::bits_to_bytes_lsb;
use interscatter_dsp::crc::crc32_ieee;
use interscatter_dsp::iq::rssi_dbm;
use interscatter_dsp::Cplx;

/// A successfully received 802.11b frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedFrame {
    /// The MAC payload with the FCS stripped.
    pub payload: Vec<u8>,
    /// The rate signalled in the PLCP header.
    pub rate: DsssRate,
    /// Received signal strength over the frame, dBm (workspace convention:
    /// unit amplitude = 0 dBm).
    pub rssi_dbm: f64,
    /// Whether the 32-bit FCS validated.
    pub fcs_ok: bool,
}

/// 802.11b receiver configuration.
#[derive(Debug, Clone, Copy)]
pub struct Dot11bReceiver {
    /// Receiver sensitivity in dBm: frames weaker than this are not detected
    /// at all (commodity cards sit around −92 dBm for 2 Mbps DSSS).
    pub sensitivity_dbm: f64,
    /// Whether to require a valid FCS for [`Dot11bReceiver::receive`] to
    /// return a frame.
    pub require_fcs: bool,
}

impl Default for Dot11bReceiver {
    fn default() -> Self {
        Dot11bReceiver {
            sensitivity_dbm: -92.0,
            require_fcs: false,
        }
    }
}

impl Dot11bReceiver {
    /// Creates a receiver with the given sensitivity.
    pub fn with_sensitivity(sensitivity_dbm: f64) -> Self {
        Dot11bReceiver {
            sensitivity_dbm,
            ..Default::default()
        }
    }

    /// Receives a frame from a chip-rate baseband stream that starts at the
    /// beginning of the PLCP preamble (chip-level timing recovery is assumed;
    /// the simulation crate aligns streams explicitly, matching how the
    /// evaluation isolates PHY behaviour from acquisition).
    pub fn receive(&self, chips: &[Cplx]) -> Result<ReceivedFrame, WifiError> {
        let rssi = rssi_dbm(chips);
        if rssi < self.sensitivity_dbm {
            return Err(WifiError::PreambleNotFound);
        }

        // --- Despread and DBPSK-decode the 1 Mbps PLCP section ---
        let plcp_bits_needed = LONG_SYNC_BITS + 16 + PLCP_HEADER_BITS;
        let plcp_chips_needed = plcp_bits_needed * barker::CHIPS_PER_SYMBOL;
        if chips.len() < plcp_chips_needed {
            return Err(WifiError::TruncatedWaveform {
                have: chips.len(),
                need: plcp_chips_needed,
            });
        }
        let plcp_symbols = barker::despread(&chips[..plcp_chips_needed]);
        // The first symbol is the DBPSK reference.
        let mut decoder = DifferentialDecoder::new(plcp_symbols[0]);
        let plcp_scrambled: Vec<u8> = decoder.decode_dbpsk_stream(&plcp_symbols[1..]);
        let mut descrambler = DsssScrambler::new(0);
        let plcp_bits = descrambler.descramble(&plcp_scrambled);

        // Find the SFD; everything after it is the PLCP header.
        let header_start = find_sfd(&plcp_bits)?;
        if plcp_bits.len() < header_start + PLCP_HEADER_BITS {
            return Err(WifiError::TruncatedWaveform {
                have: plcp_bits.len(),
                need: header_start + PLCP_HEADER_BITS,
            });
        }
        let header =
            PlcpHeader::from_bits(&plcp_bits[header_start..header_start + PLCP_HEADER_BITS])?;

        // --- PSDU section ---
        // The PLCP section we consumed is (1 reference + decoded bits); the
        // first PSDU chip follows the header bits. Account for the exact
        // number of 1 Mbps symbols consumed: 1 + header_start + 48 decoded
        // bits... the decoded bit stream is offset by one symbol (reference),
        // so the PSDU begins after (header_start + 48 + 1) symbols.
        let psdu_symbol_start = header_start + PLCP_HEADER_BITS + 1;
        let psdu_chip_start = psdu_symbol_start * barker::CHIPS_PER_SYMBOL;
        let psdu_bytes = header.psdu_bytes();
        let psdu_bits_expected = psdu_bytes * 8;
        let psdu_chips_expected =
            psdu_bits_expected / header.rate.bits_per_symbol() * header.rate.chips_per_symbol();
        if chips.len() < psdu_chip_start + psdu_chips_expected {
            return Err(WifiError::TruncatedWaveform {
                have: chips.len(),
                need: psdu_chip_start + psdu_chips_expected,
            });
        }
        let psdu_chips = &chips[psdu_chip_start..psdu_chip_start + psdu_chips_expected];
        let reference = plcp_symbols[psdu_symbol_start - 1];

        let scrambled_bits: Vec<u8> = match header.rate {
            DsssRate::Mbps1 => {
                let symbols = barker::despread(psdu_chips);
                let mut d = DifferentialDecoder::new(reference);
                d.decode_dbpsk_stream(&symbols)
            }
            DsssRate::Mbps2 => {
                let symbols = barker::despread(psdu_chips);
                let mut d = DifferentialDecoder::new(reference);
                d.decode_dqpsk_stream(&symbols)
            }
            DsssRate::Mbps5_5 => {
                let mut d = CckDemodulator::new(reference.arg());
                d.decode_stream_5_5mbps(psdu_chips)
            }
            DsssRate::Mbps11 => {
                let mut d = CckDemodulator::new(reference.arg());
                d.decode_stream_11mbps(psdu_chips)
            }
        };
        let psdu_scrambled = &scrambled_bits[..psdu_bits_expected.min(scrambled_bits.len())];
        let psdu_bit_vec = descrambler.descramble(psdu_scrambled);
        let psdu = bits_to_bytes_lsb(&psdu_bit_vec);

        // --- FCS check ---
        let (payload, fcs_ok) = if psdu.len() >= 4 {
            let (data, fcs) = psdu.split_at(psdu.len() - 4);
            (data.to_vec(), crc32_ieee(data) == *fcs)
        } else {
            (psdu.clone(), false)
        };
        if self.require_fcs && !fcs_ok {
            return Err(WifiError::CrcMismatch);
        }
        Ok(ReceivedFrame {
            payload,
            rate: header.rate,
            rssi_dbm: rssi,
            fcs_ok,
        })
    }
}

/// Convenience: counts payload bit errors between a transmitted frame and
/// the frame decoded from a (possibly corrupted) chip stream. Used by the
/// PER/BER sweeps.
pub fn payload_bit_errors(tx_frame: &Dot11bFrame, decoded_payload: &[u8]) -> usize {
    let tx_payload = &tx_frame.psdu[..tx_frame.psdu.len().saturating_sub(4)];
    let tx_bits = interscatter_dsp::bits::bytes_to_bits_lsb(tx_payload);
    let rx_bits = interscatter_dsp::bits::bytes_to_bits_lsb(decoded_payload);
    interscatter_dsp::bits::hamming_distance(&tx_bits, &rx_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dot11b::tx::Dot11bTransmitter;
    use interscatter_dsp::iq::scale;
    use rand::{Rng, SeedableRng};

    fn awgn(chips: &[Cplx], sigma: f64, seed: u64) -> Vec<Cplx> {
        // Box-Muller AWGN without depending on the channel crate.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        chips
            .iter()
            .map(|&c| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * sigma;
                let theta = 2.0 * std::f64::consts::PI * u2;
                c + Cplx::new(r * theta.cos(), r * theta.sin())
            })
            .collect()
    }

    #[test]
    fn clean_round_trip_all_rates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for rate in DsssRate::ALL {
            let payload: Vec<u8> = (0..31).map(|_| rng.gen()).collect();
            let tx = Dot11bTransmitter::new(rate);
            let frame = tx.transmit(&payload).unwrap();
            let rx = Dot11bReceiver::default();
            let received = rx.receive(&frame.chips).unwrap();
            assert_eq!(received.payload, payload, "rate {rate:?}");
            assert!(received.fcs_ok, "rate {rate:?}");
            assert_eq!(received.rate, rate);
            assert!((received.rssi_dbm - 0.0).abs() < 0.5);
        }
    }

    #[test]
    fn weak_frames_are_detected_down_to_sensitivity() {
        let tx = Dot11bTransmitter::new(DsssRate::Mbps2);
        let frame = tx.transmit(&[0x55u8; 31]).unwrap();
        // -60 dBm: amplitude 1e-3.
        let weak = scale(&frame.chips, 1e-3);
        let rx = Dot11bReceiver::default();
        let received = rx.receive(&weak).unwrap();
        assert!(received.fcs_ok);
        assert!((received.rssi_dbm + 60.0).abs() < 0.5);
        // Below sensitivity: rejected.
        let too_weak = scale(&frame.chips, 1e-5);
        assert!(matches!(
            rx.receive(&too_weak),
            Err(WifiError::PreambleNotFound)
        ));
    }

    #[test]
    fn round_trip_with_moderate_noise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let payload: Vec<u8> = (0..31).map(|_| rng.gen()).collect();
        let tx = Dot11bTransmitter::new(DsssRate::Mbps2);
        let frame = tx.transmit(&payload).unwrap();
        // SNR ~ 10 dB per chip: sigma^2 = 0.1 over two dimensions.
        let noisy = awgn(&frame.chips, 0.22, 99);
        let rx = Dot11bReceiver::default();
        let received = rx.receive(&noisy).unwrap();
        assert_eq!(received.payload, payload);
        assert!(received.fcs_ok);
    }

    #[test]
    fn heavy_noise_breaks_fcs() {
        let payload = vec![0xABu8; 31];
        let tx = Dot11bTransmitter::new(DsssRate::Mbps11);
        let frame = tx.transmit(&payload).unwrap();
        let noisy = awgn(&frame.chips, 1.6, 3);
        let rx = Dot11bReceiver::default();
        // Header corruption (an Err) is also an acceptable failure mode.
        if let Ok(received) = rx.receive(&noisy) {
            assert!(!received.fcs_ok || received.payload != payload);
        }
        let strict = Dot11bReceiver {
            require_fcs: true,
            ..Default::default()
        };
        assert!(strict.receive(&noisy).is_err() || !payload.is_empty());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let tx = Dot11bTransmitter::new(DsssRate::Mbps2);
        let frame = tx.transmit(&[1u8; 31]).unwrap();
        let rx = Dot11bReceiver::default();
        assert!(matches!(
            rx.receive(&frame.chips[..1000]),
            Err(WifiError::TruncatedWaveform { .. })
        ));
        assert!(matches!(
            rx.receive(&frame.chips[..frame.chips.len() - 50]),
            Err(WifiError::TruncatedWaveform { .. })
        ));
    }

    #[test]
    fn amplitude_scaling_does_not_change_payload() {
        // Differential phase modulation: RSSI changes, bits do not.
        let payload = vec![0xC3u8; 38];
        let tx = Dot11bTransmitter::new(DsssRate::Mbps2);
        let frame = tx.transmit(&payload).unwrap();
        let rx = Dot11bReceiver::with_sensitivity(-120.0);
        for &gain in &[1.0, 1e-2, 1e-4] {
            let received = rx.receive(&scale(&frame.chips, gain)).unwrap();
            assert_eq!(received.payload, payload);
        }
    }

    #[test]
    fn bit_error_counter() {
        let tx = Dot11bTransmitter::new(DsssRate::Mbps2);
        let frame = tx.transmit(&[0xF0, 0x0F]).unwrap();
        assert_eq!(payload_bit_errors(&frame, &[0xF0, 0x0F]), 0);
        assert_eq!(payload_bit_errors(&frame, &[0xF0, 0x0E]), 1);
        assert_eq!(payload_bit_errors(&frame, &[0x0F, 0x0F]), 8);
    }
}
