//! The 802.11b self-synchronising scrambler.
//!
//! 802.11b (HR/DSSS) scrambles the whole PPDU — preamble, header and PSDU —
//! with a 7-bit self-synchronising scrambler using the polynomial
//! z^-7 + z^-4 + 1. Unlike the frame-synchronous 802.11a/g scrambler, the
//! feedback here is taken from the *scrambled* output, so a receiver
//! descrambles correctly from any starting point after seven bits. The tag
//! must implement this exactly (it is part of "standards-compliant"
//! 802.11b), and the receiver model undoes it.

/// Initial scrambler register state for the long preamble (per the standard,
/// 0b1101100 when the register is written s6..s0).
pub const LONG_PREAMBLE_SCRAMBLER_INIT: u8 = 0b110_1100;

/// A self-synchronising 802.11b scrambler / descrambler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsssScrambler {
    /// Shift register; bit i holds the bit transmitted (i+1) bit-times ago,
    /// i.e. bit 3 is z^-4 and bit 6 is z^-7.
    state: u8,
}

impl DsssScrambler {
    /// Creates a scrambler with the given 7-bit seed.
    pub fn new(seed: u8) -> Self {
        DsssScrambler { state: seed & 0x7F }
    }

    /// Creates a scrambler with the standard long-preamble seed.
    pub fn long_preamble() -> Self {
        Self::new(LONG_PREAMBLE_SCRAMBLER_INIT)
    }

    /// Current register contents.
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Scrambles one bit: output = input ⊕ s4 ⊕ s7, and the *output* is fed
    /// back into the register.
    pub fn scramble_bit(&mut self, bit: u8) -> u8 {
        let s4 = (self.state >> 3) & 1;
        let s7 = (self.state >> 6) & 1;
        let out = (bit & 1) ^ s4 ^ s7;
        self.state = ((self.state << 1) | out) & 0x7F;
        out
    }

    /// Descrambles one bit: output = input ⊕ s4 ⊕ s7, and the *input*
    /// (received scrambled bit) is fed back, which is what makes the
    /// scrambler self-synchronising.
    pub fn descramble_bit(&mut self, bit: u8) -> u8 {
        let s4 = (self.state >> 3) & 1;
        let s7 = (self.state >> 6) & 1;
        let out = (bit & 1) ^ s4 ^ s7;
        self.state = ((self.state << 1) | (bit & 1)) & 0x7F;
        out
    }

    /// Scrambles a bit slice.
    pub fn scramble(&mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter().map(|&b| self.scramble_bit(b)).collect()
    }

    /// Descrambles a bit slice.
    pub fn descramble(&mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter().map(|&b| self.descramble_bit(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn scramble_descramble_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let bits: Vec<u8> = (0..500).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut tx = DsssScrambler::long_preamble();
        let mut rx = DsssScrambler::long_preamble();
        let scrambled = tx.scramble(&bits);
        assert_ne!(scrambled, bits);
        let recovered = rx.descramble(&scrambled);
        assert_eq!(recovered, bits);
    }

    #[test]
    fn descrambler_self_synchronises_with_wrong_seed() {
        // After 7 bits the descrambler register contains only received bits,
        // so a wrong seed corrupts at most the first 7 output bits.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let bits: Vec<u8> = (0..200).map(|_| rng.gen_range(0..=1u8)).collect();
        let mut tx = DsssScrambler::long_preamble();
        let scrambled = tx.scramble(&bits);
        let mut rx = DsssScrambler::new(0b0000000); // wrong seed
        let recovered = rx.descramble(&scrambled);
        assert_eq!(&recovered[7..], &bits[7..]);
    }

    #[test]
    fn scrambling_breaks_up_constant_runs() {
        let zeros = vec![0u8; 256];
        let mut s = DsssScrambler::long_preamble();
        let out = s.scramble(&zeros);
        let ones: usize = out.iter().map(|&b| b as usize).sum();
        // A maximal-length scrambler output over all-zero input is roughly
        // balanced.
        assert!(
            ones > 100 && ones < 156,
            "scrambled all-zeros has {ones} ones"
        );
    }

    #[test]
    fn state_tracks_output_feedback() {
        let mut s = DsssScrambler::new(0);
        // With a zero seed and zero input the output stays zero.
        for _ in 0..10 {
            assert_eq!(s.scramble_bit(0), 0);
        }
        assert_eq!(s.state(), 0);
        // A single one input perturbs the register permanently.
        assert_eq!(s.scramble_bit(1), 1);
        assert_ne!(s.state(), 0);
    }

    #[test]
    fn long_preamble_seed_constant() {
        assert_eq!(
            DsssScrambler::long_preamble().state(),
            LONG_PREAMBLE_SCRAMBLER_INIT
        );
        // Seeds are masked to 7 bits.
        assert_eq!(DsssScrambler::new(0xFF).state(), 0x7F);
    }
}
