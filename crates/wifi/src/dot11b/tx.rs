//! The complete 802.11b baseband transmitter.
//!
//! This is the chain the backscatter tag implements in its FPGA/IC baseband
//! processor (paper §3): MAC framing (payload + FCS), scrambling, spreading
//! (Barker or CCK), and differential phase modulation, producing one complex
//! chip per 1/11 µs. The tag then maps each chip onto one of its four
//! impedance states; a conventional radio would instead feed the chips to a
//! DAC. Both consumers share this transmitter.

use super::barker;
use super::cck::CckModulator;
use super::dpsk::DifferentialEncoder;
use super::plcp::{long_preamble_bits, PlcpHeader};
use super::rates::DsssRate;
use super::scrambler::DsssScrambler;
use crate::WifiError;
use interscatter_dsp::bits::bytes_to_bits_lsb;
use interscatter_dsp::crc::crc32_ieee;
use interscatter_dsp::Cplx;

/// Maximum PSDU (MAC frame) size in bytes accepted by the transmitter. The
/// 802.11 limit is 2346; backscattered frames are far smaller.
pub const MAX_PSDU_BYTES: usize = 2346;

/// A generated 802.11b baseband frame.
#[derive(Debug, Clone)]
pub struct Dot11bFrame {
    /// Chip-rate complex baseband samples (11 Mchip/s).
    pub chips: Vec<Cplx>,
    /// Index of the first payload (PSDU) chip, i.e. where the PLCP
    /// preamble + header end.
    pub psdu_start_chip: usize,
    /// The rate the PSDU is encoded at.
    pub rate: DsssRate,
    /// The PSDU bytes (payload + FCS) carried by the frame.
    pub psdu: Vec<u8>,
}

impl Dot11bFrame {
    /// Frame airtime in seconds at the 11 Mchip/s chip rate.
    pub fn airtime_s(&self) -> f64 {
        self.chips.len() as f64 / super::CHIP_RATE
    }
}

/// 802.11b transmitter configuration.
#[derive(Debug, Clone, Copy)]
pub struct Dot11bTransmitter {
    /// PSDU data rate.
    pub rate: DsssRate,
    /// Whether to append a 32-bit FCS to the payload (true for MAC frames;
    /// the PER experiments rely on it to detect corrupted packets).
    pub append_fcs: bool,
}

impl Dot11bTransmitter {
    /// Creates a transmitter for the given rate with FCS appending enabled.
    pub fn new(rate: DsssRate) -> Self {
        Dot11bTransmitter {
            rate,
            append_fcs: true,
        }
    }

    /// Builds the PSDU (payload plus optional FCS).
    pub fn build_psdu(&self, payload: &[u8]) -> Vec<u8> {
        let mut psdu = payload.to_vec();
        if self.append_fcs {
            psdu.extend_from_slice(&crc32_ieee(payload));
        }
        psdu
    }

    /// Generates the chip-rate baseband waveform for `payload`.
    ///
    /// The long PLCP preamble and header are always sent at 1 Mbps DBPSK with
    /// Barker spreading; the PSDU is sent at the configured rate.
    pub fn transmit(&self, payload: &[u8]) -> Result<Dot11bFrame, WifiError> {
        let psdu = self.build_psdu(payload);
        if psdu.len() > MAX_PSDU_BYTES {
            return Err(WifiError::PayloadTooLong {
                requested: psdu.len(),
                max: MAX_PSDU_BYTES,
            });
        }
        let header = PlcpHeader::for_payload(self.rate, psdu.len())?;

        // --- 1 Mbps portion: preamble + header, scrambled, DBPSK, Barker ---
        let mut scrambler = DsssScrambler::long_preamble();
        let mut plcp_bits = long_preamble_bits();
        plcp_bits.extend(header.to_bits());
        let plcp_scrambled = scrambler.scramble(&plcp_bits);
        let mut encoder = DifferentialEncoder::new(0.0);
        let plcp_symbols = encoder.encode_dbpsk_stream(&plcp_scrambled);
        let mut chips = barker::spread(&plcp_symbols);
        let psdu_start_chip = chips.len();

        // --- PSDU at the configured rate, continuing the same scrambler ---
        let psdu_bits = bytes_to_bits_lsb(&psdu);
        let psdu_scrambled = scrambler.scramble(&psdu_bits);
        match self.rate {
            DsssRate::Mbps1 => {
                let symbols = encoder.encode_dbpsk_stream(&psdu_scrambled);
                chips.extend(barker::spread(&symbols));
            }
            DsssRate::Mbps2 => {
                let symbols = encoder.encode_dqpsk_stream(&psdu_scrambled);
                chips.extend(barker::spread(&symbols));
            }
            DsssRate::Mbps5_5 => {
                let mut cck = CckModulator::new(encoder.phase());
                chips.extend(cck.encode_stream_5_5mbps(&psdu_scrambled));
            }
            DsssRate::Mbps11 => {
                let mut cck = CckModulator::new(encoder.phase());
                chips.extend(cck.encode_stream_11mbps(&psdu_scrambled));
            }
        }

        Ok(Dot11bFrame {
            chips,
            psdu_start_chip,
            rate: self.rate,
            psdu,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_structure_at_2mbps() {
        let tx = Dot11bTransmitter::new(DsssRate::Mbps2);
        let payload = vec![0xA5u8; 31];
        let frame = tx.transmit(&payload).unwrap();
        // PLCP: 192 bits at 1 Mbps, 11 chips per bit.
        assert_eq!(frame.psdu_start_chip, 192 * 11);
        // PSDU: 35 bytes (31 + FCS) = 280 bits = 140 DQPSK symbols = 1540 chips.
        assert_eq!(frame.chips.len() - frame.psdu_start_chip, 140 * 11);
        assert_eq!(frame.psdu.len(), 35);
        // Airtime: 192 µs PLCP + 140 µs payload.
        assert!((frame.airtime_s() - 332e-6).abs() < 1e-9);
    }

    #[test]
    fn frame_structure_at_11mbps() {
        let tx = Dot11bTransmitter::new(DsssRate::Mbps11);
        let payload = vec![0x42u8; 77];
        let frame = tx.transmit(&payload).unwrap();
        // PSDU: 81 bytes = 648 bits = 81 code words = 648 chips.
        assert_eq!(frame.chips.len() - frame.psdu_start_chip, 81 * 8);
    }

    #[test]
    fn all_chips_have_unit_magnitude() {
        // The entire 802.11b waveform is pure phase modulation — this is the
        // property that lets the backscatter tag realise it with impedance
        // switching alone.
        for rate in DsssRate::ALL {
            let tx = Dot11bTransmitter::new(rate);
            let frame = tx.transmit(&[0x13, 0x37, 0x00, 0xFF, 0x55]).unwrap();
            for chip in &frame.chips {
                assert!((chip.abs() - 1.0).abs() < 1e-9, "{rate:?} chip magnitude");
            }
        }
    }

    #[test]
    fn fcs_is_appended_and_depends_on_payload() {
        let tx = Dot11bTransmitter::new(DsssRate::Mbps2);
        let a = tx.build_psdu(&[1, 2, 3]);
        let b = tx.build_psdu(&[1, 2, 4]);
        assert_eq!(a.len(), 7);
        assert_ne!(a[3..], b[3..]);
        let no_fcs = Dot11bTransmitter {
            rate: DsssRate::Mbps2,
            append_fcs: false,
        };
        assert_eq!(no_fcs.build_psdu(&[1, 2, 3]).len(), 3);
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let tx = Dot11bTransmitter::new(DsssRate::Mbps11);
        let payload = vec![0u8; MAX_PSDU_BYTES + 1];
        assert!(tx.transmit(&payload).is_err());
    }

    #[test]
    fn different_payloads_give_different_chip_streams() {
        let tx = Dot11bTransmitter::new(DsssRate::Mbps2);
        let f1 = tx.transmit(&[0u8; 20]).unwrap();
        let f2 = tx.transmit(&[1u8; 20]).unwrap();
        assert_eq!(f1.chips.len(), f2.chips.len());
        let differing = f1
            .chips
            .iter()
            .zip(&f2.chips)
            .filter(|(a, b)| (**a - **b).abs() > 1e-9)
            .count();
        assert!(differing > 100, "payload change must alter the PSDU chips");
        // The PLCP portion is identical for equal-length payloads.
        assert!(f1.chips[..f1.psdu_start_chip]
            .iter()
            .zip(&f2.chips[..f2.psdu_start_chip])
            .all(|(a, b)| (*a - *b).abs() < 1e-12));
    }
}
