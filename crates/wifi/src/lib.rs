//! # interscatter-wifi
//!
//! 802.11 physical-layer models for the Interscatter (SIGCOMM 2016)
//! reproduction.
//!
//! Two distinct PHYs matter to the paper:
//!
//! * **802.11b (DSSS/CCK)** — the *uplink*. The backscatter tag synthesizes
//!   standards-compliant 1/2/5.5/11 Mbps 802.11b baseband (Barker spreading
//!   for 1–2 Mbps, CCK for 5.5–11 Mbps, DBPSK/DQPSK phase modulation) on top
//!   of the frequency-shifted Bluetooth tone. The [`dot11b`] module contains
//!   the transmitter the tag logic reuses and the receiver the commodity
//!   Wi-Fi card model uses to measure RSSI and packet error rate
//!   (Figures 10 and 11).
//!
//! * **802.11g (OFDM)** — the *downlink*. A commodity OFDM transmitter is
//!   turned into an amplitude modulator by choosing payload bits such that
//!   individual OFDM symbols are either "random" (high envelope) or
//!   "constant" (energy compressed into one time sample). The [`ofdm`]
//!   module implements the full 802.11g encoding chain (scrambler,
//!   convolutional coder, interleaver, QAM mapping, IFFT, cyclic prefix) and
//!   the [`ofdm::am`] sub-module crafts the AM payloads and predicts
//!   scrambler seeds (Figure 13, §4.4).
//!
//! The [`mac`] module supplies the handful of MAC-layer frame formats and
//! timing rules the coexistence evaluation needs (CTS-to-Self, RTS/CTS,
//! DIFS/SIFS timing for the iperf-style throughput model of Figure 12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot11b;
pub mod mac;
pub mod ofdm;

/// Errors produced by the Wi-Fi PHY models.
#[derive(Debug, Clone, PartialEq)]
pub enum WifiError {
    /// Payload exceeds the maximum PSDU size for the selected rate/window.
    PayloadTooLong {
        /// Bytes requested.
        requested: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// The receiver could not find a preamble / start-frame delimiter.
    PreambleNotFound,
    /// A decoded frame failed its CRC check.
    CrcMismatch,
    /// The PLCP or SIGNAL header was invalid.
    InvalidHeader(&'static str),
    /// The requested rate is not supported by the operation.
    UnsupportedRate(&'static str),
    /// The waveform was too short for the requested operation.
    TruncatedWaveform {
        /// Samples available.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// An underlying DSP error.
    Dsp(interscatter_dsp::DspError),
}

impl core::fmt::Display for WifiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WifiError::PayloadTooLong { requested, max } => {
                write!(f, "payload of {requested} bytes exceeds maximum of {max}")
            }
            WifiError::PreambleNotFound => write!(f, "no 802.11 preamble found"),
            WifiError::CrcMismatch => write!(f, "frame check sequence mismatch"),
            WifiError::InvalidHeader(what) => write!(f, "invalid header: {what}"),
            WifiError::UnsupportedRate(what) => write!(f, "unsupported rate: {what}"),
            WifiError::TruncatedWaveform { have, need } => {
                write!(f, "waveform truncated: have {have} samples, need {need}")
            }
            WifiError::Dsp(e) => write!(f, "DSP error: {e}"),
        }
    }
}

impl std::error::Error for WifiError {}

impl From<interscatter_dsp::DspError> for WifiError {
    fn from(e: interscatter_dsp::DspError) -> Self {
        WifiError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(WifiError::PayloadTooLong {
            requested: 300,
            max: 209
        }
        .to_string()
        .contains("209"));
        assert!(WifiError::PreambleNotFound.to_string().contains("preamble"));
        assert!(WifiError::CrcMismatch.to_string().contains("check"));
        assert!(WifiError::InvalidHeader("length")
            .to_string()
            .contains("length"));
        assert!(WifiError::UnsupportedRate("1 Mbps")
            .to_string()
            .contains("1 Mbps"));
        assert!(WifiError::TruncatedWaveform { have: 10, need: 20 }
            .to_string()
            .contains("20"));
        let e: WifiError = interscatter_dsp::DspError::EmptyInput("x").into();
        assert!(e.to_string().contains("DSP"));
    }
}
