//! The small slice of the 802.11 MAC that the coexistence evaluation needs.
//!
//! Fig. 12 of the paper measures how backscatter-generated packets affect a
//! concurrent TCP flow, with and without the mirror copy produced by
//! double-sideband backscatter, and §2.3.3 describes three
//! channel-reservation optimisations built on CTS-to-Self and RTS/CTS. This
//! module provides the frame-duration arithmetic and virtual carrier-sense
//! (NAV) rules the event-driven MAC simulator in the `sim` crate uses; it
//! does not attempt a full MAC implementation.

use crate::dot11b::rates::DsssRate;

/// Short interframe space for 2.4 GHz OFDM/DSSS, seconds.
pub const SIFS_S: f64 = 10e-6;

/// DCF interframe space (SIFS + 2 slots), seconds.
pub const DIFS_S: f64 = 50e-6;

/// Slot time for 802.11b/g mixed mode, seconds.
pub const SLOT_TIME_S: f64 = 20e-6;

/// Minimum contention window (number of slots) for DCF.
pub const CW_MIN: u32 = 31;

/// Maximum contention window for DCF.
pub const CW_MAX: u32 = 1023;

/// Length in bytes of MAC control frames.
pub mod control_frame_len {
    /// RTS frame length (bytes).
    pub const RTS: usize = 20;
    /// CTS (and CTS-to-Self) frame length (bytes).
    pub const CTS: usize = 14;
    /// ACK frame length (bytes).
    pub const ACK: usize = 14;
}

/// Airtime of a DSSS control frame at the basic rate, including the short
/// PLCP preamble.
pub fn control_frame_airtime_s(frame_bytes: usize, rate: DsssRate) -> f64 {
    crate::dot11b::rates::SHORT_PLCP_DURATION_S + rate.payload_airtime_s(frame_bytes)
}

/// Airtime of a data frame (PSDU of `payload_bytes` + 28 bytes of MAC
/// header/FCS overhead) at the given DSSS rate.
pub fn data_frame_airtime_s(payload_bytes: usize, rate: DsssRate) -> f64 {
    crate::dot11b::rates::SHORT_PLCP_DURATION_S + rate.payload_airtime_s(payload_bytes + 28)
}

/// A CTS-to-Self reservation: the duration field reserves the medium for the
/// given time, and every station that decodes it defers (sets its NAV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtsToSelf {
    /// Time the medium is reserved for after the CTS frame ends, seconds.
    pub reserved_duration_s: f64,
}

impl CtsToSelf {
    /// Builds a CTS-to-Self that protects one Bluetooth advertising packet
    /// of the given duration — the paper's first optimisation: the commodity
    /// device's Wi-Fi radio clears the channel just before its Bluetooth
    /// radio transmits the advertisement the tag will backscatter.
    pub fn protecting(ble_packet_duration_s: f64) -> Self {
        CtsToSelf {
            reserved_duration_s: ble_packet_duration_s + SIFS_S,
        }
    }

    /// Total airtime cost: the CTS frame itself (sent at 2 Mbps DSSS) plus
    /// the reservation.
    pub fn total_occupancy_s(&self) -> f64 {
        control_frame_airtime_s(control_frame_len::CTS, DsssRate::Mbps2) + self.reserved_duration_s
    }
}

/// An RTS/CTS exchange initiated *by the backscatter tag* (the paper's second
/// optimisation): the tag backscatters an RTS on the target Wi-Fi channel
/// while the advertisement is on BLE channel 37; if the Wi-Fi device answers
/// with a CTS the channel is reserved for the next `2ΔT + T_bluetooth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagRtsReservation {
    /// The inter-advertising-channel gap ΔT of the BLE transmitter, seconds.
    pub inter_channel_gap_s: f64,
    /// Duration of one Bluetooth advertising packet, seconds.
    pub ble_packet_duration_s: f64,
}

impl TagRtsReservation {
    /// The reservation duration requested in the RTS: 2ΔT + T_bluetooth
    /// (paper §2.3.3).
    pub fn reservation_s(&self) -> f64 {
        2.0 * self.inter_channel_gap_s + self.ble_packet_duration_s
    }

    /// Whether a backscatter transmission starting `offset_s` after the RTS
    /// completes still falls inside the reservation.
    pub fn covers(&self, offset_s: f64) -> bool {
        offset_s >= 0.0 && offset_s <= self.reservation_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interframe_spacing_ordering() {
        const { assert!(SIFS_S < DIFS_S) };
        assert!((DIFS_S - (SIFS_S + 2.0 * SLOT_TIME_S)).abs() < 1e-12);
        const { assert!(CW_MIN < CW_MAX) };
    }

    #[test]
    fn control_frame_airtimes() {
        // CTS at 2 Mbps: 96 µs PLCP + 14*8/2e6 = 96 + 56 = 152 µs.
        let t = control_frame_airtime_s(control_frame_len::CTS, DsssRate::Mbps2);
        assert!((t - 152e-6).abs() < 1e-9);
        // ACK equals CTS length.
        assert_eq!(
            control_frame_airtime_s(control_frame_len::ACK, DsssRate::Mbps2),
            t
        );
        // Data frame adds the 28-byte MAC overhead.
        let d = data_frame_airtime_s(100, DsssRate::Mbps11);
        assert!((d - (96e-6 + 128.0 * 8.0 / 11e6)).abs() < 1e-9);
    }

    #[test]
    fn cts_to_self_protects_the_ble_packet() {
        let cts = CtsToSelf::protecting(376e-6);
        assert!(cts.reserved_duration_s > 376e-6);
        assert!(cts.total_occupancy_s() > cts.reserved_duration_s);
    }

    #[test]
    fn tag_rts_reservation_formula() {
        let r = TagRtsReservation {
            inter_channel_gap_s: 400e-6,
            ble_packet_duration_s: 376e-6,
        };
        assert!((r.reservation_s() - 1176e-6).abs() < 1e-12);
        assert!(r.covers(0.0));
        assert!(r.covers(1.0e-3));
        assert!(!r.covers(1.3e-3));
        assert!(!r.covers(-1e-6));
    }
}
