//! Turning an 802.11g transmitter into an amplitude modulator (§2.4).
//!
//! A passive peak-detector receiver cannot decode OFDM, but it can tell a
//! high-envelope symbol from a low-envelope one. This module crafts the
//! DATA-field bits so that selected OFDM symbols are:
//!
//! * **constant** — every scrambled bit in the symbol is identical, so after
//!   coding, interleaving and QAM mapping every data subcarrier carries the
//!   same point and the IFFT compresses the energy into the first time
//!   sample (low envelope for the rest of the symbol), or
//! * **random** — ordinary pseudo-random bits, spreading energy over the
//!   whole symbol (high envelope).
//!
//! A downlink `1` bit is encoded as a random symbol followed by a constant
//! symbol; a `0` bit as two random symbols (Fig. 8), giving 125 kbps at 4 µs
//! per symbol. Two practical details from the paper are reproduced: the six
//! data bits preceding a constant symbol are forced to one so the
//! convolutional encoder's memory does not leak randomness into it, and the
//! random symbol preceding a constant one is chosen so its last time sample
//! has a high amplitude, avoiding a false low during the constant symbol's
//! (all-zero) cyclic prefix.

use super::ppdu::{OfdmFrame, OfdmRate, OfdmTransmitter};
use super::scrambler::OfdmScrambler;
use super::symbol::SYMBOL_LEN;
use crate::WifiError;
use rand::Rng;

/// Downlink bit rate achieved by the two-symbol encoding (1 bit per 8 µs).
pub const DOWNLINK_BIT_RATE: f64 = 125e3;

/// Duration of one OFDM symbol (80 samples at 20 MS/s), seconds.
pub const SYMBOL_DURATION_S: f64 = SYMBOL_LEN as f64 / super::OFDM_SAMPLE_RATE;

/// Duration of the 802.11g legacy preamble plus SIGNAL symbol that leads
/// every AM frame (two training sequences of 8 µs plus one 4 µs SIGNAL
/// symbol), seconds.
pub const PREAMBLE_DURATION_S: f64 = 20e-6;

/// On-air duration of an AM downlink frame carrying `downlink_bits` bits:
/// the legacy preamble plus two 4 µs OFDM symbols per downlink bit
/// (Fig. 8's Random/Constant pair encoding). This is what a network-level
/// simulation charges the medium for a poll or ack frame without
/// synthesizing the waveform.
pub fn am_frame_airtime_s(downlink_bits: usize) -> f64 {
    PREAMBLE_DURATION_S + downlink_bits as f64 * 2.0 * SYMBOL_DURATION_S
}

/// Which envelope class an OFDM symbol should belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolClass {
    /// High-envelope symbol built from pseudo-random bits.
    Random,
    /// Impulse-like symbol built from constant scrambled bits.
    Constant,
}

/// Expands downlink bits into the per-symbol class schedule of Fig. 8:
/// `1` → Random, Constant; `0` → Random, Random.
pub fn symbol_schedule(bits: &[u8]) -> Vec<SymbolClass> {
    let mut schedule = Vec::with_capacity(bits.len() * 2);
    for &b in bits {
        schedule.push(SymbolClass::Random);
        schedule.push(if b & 1 == 1 {
            SymbolClass::Constant
        } else {
            SymbolClass::Random
        });
    }
    schedule
}

/// Crafts the DATA-field bits realising a given symbol-class schedule for a
/// transmitter whose scrambler seed is known/predicted.
///
/// For a **constant** symbol the data bits are set to the complement of the
/// scrambling sequence so the scrambled bits are all *ones* — the all-ones
/// case of the paper's construction. All-ones is preferred over all-zeros
/// because the Gray-coded 16/64-QAM constellations map the all-ones label to
/// their lowest-energy point, which minimises the residual envelope that the
/// uncontrollable pilots and band-edge nulls leave in the "constant" symbol.
/// For a **random** symbol the bits are drawn from `rng`, except that the
/// last six bits are forced so the scrambled bits are one (flushing the
/// convolutional encoder's memory with ones ahead of a constant symbol, as
/// §2.4 prescribes).
pub fn craft_data_bits<R: Rng>(
    rate: OfdmRate,
    scrambler_seed: u8,
    schedule: &[SymbolClass],
    rng: &mut R,
) -> Vec<u8> {
    let n_dbps = rate.data_bits_per_symbol();
    let mut scrambler = OfdmScrambler::new(scrambler_seed);
    let mut data_bits = Vec::with_capacity(schedule.len() * n_dbps);
    for (idx, class) in schedule.iter().enumerate() {
        let scramble_seq = scrambler.sequence(n_dbps);
        match class {
            SymbolClass::Constant => {
                // data ^ scramble = 1  =>  data = scramble ^ 1.
                data_bits.extend(scramble_seq.iter().map(|&s| s ^ 1));
            }
            SymbolClass::Random => {
                let next_is_constant = schedule.get(idx + 1) == Some(&SymbolClass::Constant);
                for (k, &s) in scramble_seq.iter().enumerate() {
                    let forced_tail = next_is_constant && k >= n_dbps - 6;
                    let bit = if forced_tail {
                        // Scrambled bit must be 1: data = scramble ^ 1.
                        s ^ 1
                    } else {
                        rng.gen_range(0..=1u8)
                    };
                    data_bits.push(bit);
                }
            }
        }
    }
    data_bits
}

/// A crafted AM downlink frame: the OFDM waveform plus the schedule it
/// encodes.
#[derive(Debug, Clone)]
pub struct AmFrame {
    /// The underlying OFDM frame.
    pub frame: OfdmFrame,
    /// Per-symbol classes.
    pub schedule: Vec<SymbolClass>,
    /// The downlink bits the schedule encodes.
    pub downlink_bits: Vec<u8>,
}

/// Builds an AM downlink frame carrying `downlink_bits` using the given
/// transmitter (rate + seed) — the full §2.4 pipeline.
pub fn build_am_frame<R: Rng>(
    tx: &OfdmTransmitter,
    downlink_bits: &[u8],
    rng: &mut R,
) -> Result<AmFrame, WifiError> {
    if downlink_bits.is_empty() {
        return Err(WifiError::InvalidHeader(
            "downlink frame needs at least one bit",
        ));
    }
    let schedule = symbol_schedule(downlink_bits);
    let data_bits = craft_data_bits(tx.rate, tx.scrambler_seed, &schedule, rng);
    let frame = tx.transmit_raw_bits(&data_bits)?;
    Ok(AmFrame {
        frame,
        schedule,
        downlink_bits: downlink_bits.to_vec(),
    })
}

/// Measures the sustained envelope of each OFDM symbol *body* as the median
/// of the per-sample magnitudes.
///
/// A "constant" symbol concentrates its energy near the first body sample
/// (plus the uncontrollable pilots and the Dirichlet-kernel sidelobes of the
/// unused band-edge subcarriers), so its *median* envelope is several times
/// lower than that of a random symbol even though its peak is higher. The
/// median is therefore the software analogue of what the slow peak-detector
/// comparator integrates over a symbol.
pub fn per_symbol_envelope(samples: &[interscatter_dsp::Cplx]) -> Vec<f64> {
    samples
        .chunks(SYMBOL_LEN)
        .filter(|c| c.len() == SYMBOL_LEN)
        .map(|symbol| {
            let body = &symbol[super::symbol::CP_LEN + 1..];
            let mut mags: Vec<f64> = body.iter().map(|s| s.abs()).collect();
            mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            mags[mags.len() / 2]
        })
        .collect()
}

/// Classifies each symbol of a received waveform by thresholding its mean
/// envelope halfway between the observed minimum and maximum — a software
/// stand-in for the comparator in the peak-detector receiver. Returns one
/// class per symbol.
pub fn classify_symbols(samples: &[interscatter_dsp::Cplx]) -> Vec<SymbolClass> {
    let envelopes = per_symbol_envelope(samples);
    if envelopes.is_empty() {
        return Vec::new();
    }
    let max = envelopes.iter().cloned().fold(f64::MIN, f64::max);
    let min = envelopes.iter().cloned().fold(f64::MAX, f64::min);
    let threshold = (max + min) / 2.0;
    envelopes
        .iter()
        .map(|&e| {
            if e < threshold {
                SymbolClass::Constant
            } else {
                SymbolClass::Random
            }
        })
        .collect()
}

/// Decodes downlink bits from a received symbol-class sequence (inverse of
/// [`symbol_schedule`]): every pair (Random, X) decodes to `1` if X is
/// Constant and `0` otherwise. Trailing unpaired symbols are ignored.
pub fn decode_schedule(classes: &[SymbolClass]) -> Vec<u8> {
    classes
        .chunks(2)
        .filter(|c| c.len() == 2)
        .map(|pair| u8::from(pair[1] == SymbolClass::Constant))
        .collect()
}

/// Ratio below which the second symbol of a pair is declared "constant"
/// relative to the first (always-random) symbol of the pair.
pub const PAIRWISE_DECISION_RATIO: f64 = 0.55;

/// Decodes downlink bits directly from a received waveform using the
/// pairwise structure of the encoding: within each 2-symbol pair the first
/// symbol is always random, so it doubles as an amplitude reference for the
/// second. This differential decision is what makes the scheme robust to the
/// absolute signal level at the peak detector (which varies with distance in
/// Fig. 13).
pub fn decode_downlink_bits(samples: &[interscatter_dsp::Cplx]) -> Vec<u8> {
    let envelopes = per_symbol_envelope(samples);
    envelopes
        .chunks(2)
        .filter(|c| c.len() == 2)
        .map(|pair| {
            let reference = pair[0].max(1e-30);
            u8::from(pair[1] / reference < PAIRWISE_DECISION_RATIO)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::symbol::papr_db;
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xA11CE)
    }

    #[test]
    fn schedule_expansion_matches_fig8() {
        let schedule = symbol_schedule(&[1, 0, 1]);
        assert_eq!(
            schedule,
            vec![
                SymbolClass::Random,
                SymbolClass::Constant,
                SymbolClass::Random,
                SymbolClass::Random,
                SymbolClass::Random,
                SymbolClass::Constant,
            ]
        );
        assert_eq!(decode_schedule(&schedule), vec![1, 0, 1]);
    }

    #[test]
    fn crafted_constant_symbols_have_constant_scrambled_bits() {
        let rate = OfdmRate::Mbps36;
        let seed = 0x45;
        let schedule = vec![
            SymbolClass::Random,
            SymbolClass::Constant,
            SymbolClass::Constant,
        ];
        let data = craft_data_bits(rate, seed, &schedule, &mut rng());
        let mut scrambler = OfdmScrambler::new(seed);
        let scrambled = scrambler.scramble(&data);
        let n = rate.data_bits_per_symbol();
        // Symbols 1 and 2 are constant: their scrambled bits are all ones.
        assert!(scrambled[n..2 * n].iter().all(|&b| b == 1));
        assert!(scrambled[2 * n..3 * n].iter().all(|&b| b == 1));
        // The random symbol preceding a constant one ends with six scrambled
        // ones (encoder flush).
        assert!(scrambled[n - 6..n].iter().all(|&b| b == 1));
    }

    #[test]
    fn am_frame_envelope_separates_classes() {
        // The crux of Fig. 7: constant symbols must have a visibly lower
        // envelope than random symbols at the peak-detector output.
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x2D);
        let bits = vec![1, 0, 1, 1, 0, 1, 0, 0, 1, 1];
        let am = build_am_frame(&tx, &bits, &mut rng()).unwrap();
        assert_eq!(am.frame.num_symbols, bits.len() * 2);
        let envelopes = per_symbol_envelope(&am.frame.samples);
        assert_eq!(envelopes.len(), am.schedule.len());
        let min_random = envelopes
            .iter()
            .zip(&am.schedule)
            .filter(|(_, c)| **c == SymbolClass::Random)
            .map(|(e, _)| *e)
            .fold(f64::MAX, f64::min);
        let max_constant = envelopes
            .iter()
            .zip(&am.schedule)
            .filter(|(_, c)| **c == SymbolClass::Constant)
            .map(|(e, _)| *e)
            .fold(f64::MIN, f64::max);
        assert!(
            min_random > 2.0 * max_constant,
            "envelope classes overlap: min random {min_random}, max constant {max_constant}"
        );
    }

    #[test]
    fn clean_downlink_round_trip() {
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x51);
        let bits: Vec<u8> = (0..64).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let am = build_am_frame(&tx, &bits, &mut rng()).unwrap();
        assert_eq!(decode_downlink_bits(&am.frame.samples), bits);
    }

    #[test]
    fn works_at_64qam_rates_too() {
        let tx = OfdmTransmitter::new(OfdmRate::Mbps54, 0x33);
        let bits = vec![0, 1, 1, 0, 1];
        let am = build_am_frame(&tx, &bits, &mut rng()).unwrap();
        assert_eq!(decode_downlink_bits(&am.frame.samples), bits);
    }

    #[test]
    fn pairwise_decode_is_scale_invariant() {
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x51);
        let bits = vec![1, 0, 0, 1, 1, 0, 1];
        let am = build_am_frame(&tx, &bits, &mut rng()).unwrap();
        let attenuated: Vec<interscatter_dsp::Cplx> =
            am.frame.samples.iter().map(|&s| s * 3.2e-4).collect();
        assert_eq!(decode_downlink_bits(&attenuated), bits);
    }

    #[test]
    fn threshold_classification_agrees_on_strong_contrast() {
        // classify_symbols (global threshold) should agree with the pairwise
        // decoder when the frame contains both classes.
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x51);
        let bits = vec![1, 1, 1, 0, 1, 1];
        let am = build_am_frame(&tx, &bits, &mut rng()).unwrap();
        let classes = classify_symbols(&am.frame.samples);
        assert_eq!(decode_schedule(&classes), bits);
    }

    #[test]
    fn constant_symbol_has_much_higher_papr() {
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x22);
        let am = build_am_frame(&tx, &[1], &mut rng()).unwrap();
        let random_sym = &am.frame.samples[..SYMBOL_LEN];
        let constant_sym = &am.frame.samples[SYMBOL_LEN..2 * SYMBOL_LEN];
        assert!(papr_db(constant_sym) > papr_db(random_sym) + 6.0);
    }

    #[test]
    fn wrong_seed_prediction_destroys_the_am_structure() {
        // If the tag-side planner predicts the wrong scrambler seed the
        // "constant" symbols are scrambled into ordinary random symbols and
        // the envelope contrast collapses — the reason §4.4 studies seed
        // predictability.
        let rate = OfdmRate::Mbps36;
        let schedule = symbol_schedule(&[1, 1, 1, 1]);
        let data = craft_data_bits(rate, 0x10, &schedule, &mut rng());
        let tx_wrong = OfdmTransmitter::new(rate, 0x4B);
        let frame = tx_wrong.transmit_raw_bits(&data).unwrap();
        let envelopes = per_symbol_envelope(&frame.samples);
        let max = envelopes.iter().cloned().fold(f64::MIN, f64::max);
        let min = envelopes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 2.0,
            "with a wrong seed there should be no strong envelope contrast (max {max}, min {min})"
        );
    }

    #[test]
    fn empty_downlink_bits_rejected() {
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x2D);
        assert!(build_am_frame(&tx, &[], &mut rng()).is_err());
    }

    #[test]
    fn downlink_bit_rate_is_125_kbps() {
        // 2 symbols × 4 µs per bit.
        assert!((DOWNLINK_BIT_RATE - 1.0 / 8e-6).abs() < 1.0);
    }

    #[test]
    fn am_frame_airtime_matches_the_waveform() {
        assert!((SYMBOL_DURATION_S - 4e-6).abs() < 1e-12);
        // Airtime = preamble + one Random/Constant symbol pair per bit, so
        // the analytic duration must match the synthesized sample count.
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x2D);
        let bits = vec![1, 0, 1, 1];
        let am = build_am_frame(&tx, &bits, &mut rng()).unwrap();
        let body_s = am.frame.samples.len() as f64 / super::super::OFDM_SAMPLE_RATE;
        let analytic = am_frame_airtime_s(bits.len());
        assert!((analytic - PREAMBLE_DURATION_S - body_s).abs() < 1e-12);
        // More bits, longer frame; never shorter than the preamble.
        assert!(am_frame_airtime_s(8) > am_frame_airtime_s(2));
        assert!(am_frame_airtime_s(1) > PREAMBLE_DURATION_S);
    }

    #[test]
    fn classify_handles_empty_input() {
        assert!(classify_symbols(&[]).is_empty());
        assert!(per_symbol_envelope(&[]).is_empty());
        assert!(decode_schedule(&[SymbolClass::Random]).is_empty());
    }
}
