//! The 802.11a/g convolutional code (K = 7, rate 1/2, generators 133/171
//! octal) with puncturing to rates 2/3 and 3/4, plus a hard-decision Viterbi
//! decoder.
//!
//! The Interscatter downlink relies on one specific algebraic property of
//! this code (paper §2.4): both generator polynomials have an odd number of
//! taps (five each), so an all-ones input produces all-ones coded output and
//! an all-zeros input produces all-zeros output. That is what lets the AM
//! payload crafter control the *coded* bits of a whole OFDM symbol even
//! though the encoder is a 1-to-2 mapping. The full encoder/decoder is still
//! implemented so the OFDM chain can round-trip arbitrary frames in tests
//! and in the downlink BER experiments.

use crate::WifiError;

/// Constraint length of the 802.11 convolutional code.
pub const CONSTRAINT_LENGTH: usize = 7;

/// Generator polynomial g0 = 133 octal (0b1011011).
pub const G0: u8 = 0o133;

/// Generator polynomial g1 = 171 octal (0b1111001).
pub const G1: u8 = 0o171;

/// Coding rates supported by 802.11a/g.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 (no puncturing).
    Half,
    /// Rate 2/3 (puncture every fourth output bit).
    TwoThirds,
    /// Rate 3/4 (puncture two of every six output bits).
    ThreeQuarters,
}

impl CodeRate {
    /// Numerator/denominator of the rate.
    pub fn as_fraction(self) -> (usize, usize) {
        match self {
            CodeRate::Half => (1, 2),
            CodeRate::TwoThirds => (2, 3),
            CodeRate::ThreeQuarters => (3, 4),
        }
    }

    /// The puncturing pattern applied to the rate-1/2 output, as a repeating
    /// mask over (A, B) output pairs: `true` = transmit, `false` = puncture.
    /// Patterns follow IEEE 802.11-2016 §17.3.5.7.
    fn puncture_pattern(self) -> &'static [(bool, bool)] {
        match self {
            CodeRate::Half => &[(true, true)],
            CodeRate::TwoThirds => &[(true, true), (true, false)],
            CodeRate::ThreeQuarters => &[(true, true), (true, false), (false, true)],
        }
    }

    /// Number of coded bits produced per data bit × denominator (used for
    /// sizing buffers): for rate k/n, `coded_len(data) = data * n / k`.
    pub fn coded_len(self, data_bits: usize) -> usize {
        let (k, n) = self.as_fraction();
        data_bits * n / k
    }
}

/// Number of parity bits produced by the two generators for a given encoder
/// state+input window (7 bits, newest bit in the LSB).
fn parity(window: u8, generator: u8) -> u8 {
    (window & generator).count_ones() as u8 & 1
}

/// Encodes a bit stream at rate 1/2. The encoder starts from the all-zero
/// state; callers append 6 tail zeros if they need the decoder to terminate
/// (the PPDU layer does).
pub fn encode_half_rate(data: &[u8]) -> Vec<u8> {
    let mut window: u8 = 0; // bit i = input from i steps ago, bit 0 = current
    let mut out = Vec::with_capacity(data.len() * 2);
    for &bit in data {
        window = ((window << 1) | (bit & 1)) & 0x7F;
        out.push(parity(window, G0));
        out.push(parity(window, G1));
    }
    out
}

/// Encodes and punctures to the requested rate.
pub fn encode(data: &[u8], rate: CodeRate) -> Vec<u8> {
    let coded = encode_half_rate(data);
    let pattern = rate.puncture_pattern();
    let mut out = Vec::with_capacity(rate.coded_len(data.len()));
    for (i, pair) in coded.chunks(2).enumerate() {
        let (keep_a, keep_b) = pattern[i % pattern.len()];
        if keep_a {
            out.push(pair[0]);
        }
        if keep_b && pair.len() > 1 {
            out.push(pair[1]);
        }
    }
    out
}

/// Re-inserts erasures (value 2) where puncturing removed bits, recovering a
/// rate-1/2-shaped stream for the Viterbi decoder.
fn depuncture(coded: &[u8], rate: CodeRate) -> Vec<u8> {
    let pattern = rate.puncture_pattern();
    let mut out = Vec::new();
    let mut idx = 0;
    let mut pair = 0usize;
    while idx < coded.len() {
        let (keep_a, keep_b) = pattern[pair % pattern.len()];
        if keep_a {
            out.push(coded[idx]);
            idx += 1;
        } else {
            out.push(2);
        }
        if idx <= coded.len() {
            if keep_b {
                if idx < coded.len() {
                    out.push(coded[idx]);
                    idx += 1;
                } else {
                    out.push(2);
                }
            } else {
                out.push(2);
            }
        }
        pair += 1;
    }
    out
}

/// Hard-decision Viterbi decoder for the 802.11 convolutional code.
///
/// `coded` contains hard bits (0/1) — or, after depuncturing, erasures
/// marked as 2 which contribute no branch metric. The decoder assumes the
/// encoder started in the all-zero state and, if `terminated` is true, also
/// ended there (the caller appended 6 tail zeros before encoding).
pub fn viterbi_decode(
    coded: &[u8],
    rate: CodeRate,
    terminated: bool,
) -> Result<Vec<u8>, WifiError> {
    if rate == CodeRate::Half && !coded.len().is_multiple_of(2) {
        return Err(WifiError::InvalidHeader(
            "rate-1/2 coded stream must have even length",
        ));
    }
    let half_rate = depuncture(coded, rate);
    if !half_rate.len().is_multiple_of(2) {
        return Err(WifiError::InvalidHeader(
            "coded stream length not a multiple of the code rate",
        ));
    }
    let steps = half_rate.len() / 2;
    if steps == 0 {
        return Ok(Vec::new());
    }
    const NUM_STATES: usize = 64;
    let inf = u32::MAX / 2;
    let mut metrics = vec![inf; NUM_STATES];
    metrics[0] = 0;
    // survivors[t][state] = (previous state, input bit)
    let mut survivors: Vec<Vec<(u8, u8)>> = Vec::with_capacity(steps);

    for t in 0..steps {
        let obs_a = half_rate[2 * t];
        let obs_b = half_rate[2 * t + 1];
        let mut next = vec![inf; NUM_STATES];
        let mut surv = vec![(0u8, 0u8); NUM_STATES];
        for (state, &m) in metrics.iter().enumerate() {
            if m >= inf {
                continue;
            }
            for input in 0..2u8 {
                // The encoder window is (new bit, 6 previous bits) = 7 bits.
                let window = (((state as u8) << 1) | input) & 0x7F;
                let a = parity(window, G0);
                let b = parity(window, G1);
                let mut branch = 0u32;
                if obs_a != 2 && a != obs_a {
                    branch += 1;
                }
                if obs_b != 2 && b != obs_b {
                    branch += 1;
                }
                let next_state = (window & 0x3F) as usize;
                let candidate = m + branch;
                if candidate < next[next_state] {
                    next[next_state] = candidate;
                    surv[next_state] = (state as u8, input);
                }
            }
        }
        metrics = next;
        survivors.push(surv);
    }

    // Pick the final state: zero if terminated, otherwise the best metric.
    let mut state = if terminated {
        0usize
    } else {
        metrics
            .iter()
            .enumerate()
            .min_by_key(|(_, &m)| m)
            .map(|(s, _)| s)
            .unwrap_or(0)
    };

    let mut decoded = vec![0u8; steps];
    for t in (0..steps).rev() {
        let (prev, input) = survivors[t][state];
        decoded[t] = input;
        state = prev as usize;
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn generators_have_odd_tap_counts() {
        // The property §2.4 depends on: all-ones in produces all-ones out.
        assert_eq!(u32::from(G0).count_ones() % 2, 1);
        assert_eq!(u32::from(G1).count_ones() % 2, 1);
    }

    #[test]
    fn all_ones_input_gives_all_ones_output_in_steady_state() {
        let coded = encode_half_rate(&[1u8; 40]);
        // After the 6-bit warm-up the window is all ones and both parities
        // are 1 (odd tap count).
        assert!(coded[12..].iter().all(|&b| b == 1));
        let coded0 = encode_half_rate(&[0u8; 40]);
        assert!(coded0.iter().all(|&b| b == 0));
    }

    #[test]
    fn half_rate_round_trip() {
        let mut data = random_bits(200, 1);
        data.extend(vec![0u8; 6]); // termination tail
        let coded = encode(&data, CodeRate::Half);
        assert_eq!(coded.len(), data.len() * 2);
        let decoded = viterbi_decode(&coded, CodeRate::Half, true).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn punctured_rates_round_trip() {
        for rate in [CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let mut data = random_bits(240, 2);
            data.extend(vec![0u8; 6]);
            let coded = encode(&data, rate);
            let decoded = viterbi_decode(&coded, rate, true).unwrap();
            assert_eq!(decoded, data, "rate {rate:?}");
        }
    }

    #[test]
    fn coded_length_matches_rate() {
        let data = random_bits(246, 7); // divisible by 2 and 3 after +6? 246 ok
        assert_eq!(encode(&data, CodeRate::Half).len(), 492);
        assert_eq!(encode(&data, CodeRate::TwoThirds).len(), 369);
        assert_eq!(encode(&data, CodeRate::ThreeQuarters).len(), 328);
        assert_eq!(CodeRate::Half.coded_len(100), 200);
        assert_eq!(CodeRate::TwoThirds.coded_len(100), 150);
        assert_eq!(CodeRate::ThreeQuarters.coded_len(99), 132);
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let mut data = random_bits(150, 3);
        data.extend(vec![0u8; 6]);
        let mut coded = encode(&data, CodeRate::Half);
        // Flip well-separated bits — a free-distance-10 code corrects these.
        for idx in [10, 60, 110, 170, 230, 290] {
            coded[idx] ^= 1;
        }
        let decoded = viterbi_decode(&coded, CodeRate::Half, true).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn unterminated_decoding_works() {
        let data = random_bits(100, 4);
        let coded = encode(&data, CodeRate::Half);
        let decoded = viterbi_decode(&coded, CodeRate::Half, false).unwrap();
        // The tail (last few bits) may be ambiguous without termination, but
        // the body must match.
        assert_eq!(&decoded[..90], &data[..90]);
    }

    #[test]
    fn odd_length_stream_is_rejected() {
        let coded = vec![0u8; 7];
        assert!(viterbi_decode(&coded, CodeRate::Half, true).is_err());
        assert!(viterbi_decode(&[], CodeRate::Half, true)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn known_vector_first_bits() {
        // Encoding a single 1 from the zero state: window = 0000001,
        // A = parity(1 & 133o=1011011b) = 1, B = parity(1 & 171o=1111001b) = 1.
        assert_eq!(encode_half_rate(&[1]), vec![1, 1]);
        // Then a 0: window = 0000010 -> A = taps bit1 of G0 (1) -> 1,
        // B = bit1 of G1 (0) -> 0.
        assert_eq!(encode_half_rate(&[1, 0]), vec![1, 1, 1, 0]);
    }
}
