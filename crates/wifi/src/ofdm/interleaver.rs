//! The 802.11a/g block interleaver.
//!
//! Coded bits within each OFDM symbol are interleaved by two permutations:
//! the first spreads adjacent coded bits onto non-adjacent subcarriers, the
//! second alternates them between more and less significant constellation
//! bits. The property the downlink trick uses (paper §2.4) is trivial but
//! worth stating: a permutation of an all-equal sequence is the same
//! sequence, so the crafted all-ones/all-zeros symbols pass through the
//! interleaver unchanged.

/// Computes the interleaving permutation for `n_cbps` coded bits per symbol
/// and `n_bpsc` coded bits per subcarrier. Returns a vector `perm` such that
/// output index `perm[k]` takes input bit `k`.
pub fn permutation(n_cbps: usize, n_bpsc: usize) -> Vec<usize> {
    let s = (n_bpsc / 2).max(1);
    let mut perm = vec![0usize; n_cbps];
    #[allow(clippy::needless_range_loop)] // k is the spec's symbol index; indexing mirrors 17.3.5.7
    for k in 0..n_cbps {
        // First permutation.
        let i = (n_cbps / 16) * (k % 16) + (k / 16);
        // Second permutation.
        let j = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
        perm[k] = j;
    }
    perm
}

/// Interleaves the coded bits of one OFDM symbol.
///
/// # Panics
/// Panics if `bits.len() != n_cbps` — symbol assembly always supplies whole
/// symbols.
pub fn interleave(bits: &[u8], n_cbps: usize, n_bpsc: usize) -> Vec<u8> {
    assert_eq!(
        bits.len(),
        n_cbps,
        "interleaver needs exactly one symbol of bits"
    );
    let perm = permutation(n_cbps, n_bpsc);
    let mut out = vec![0u8; n_cbps];
    for (k, &bit) in bits.iter().enumerate() {
        out[perm[k]] = bit;
    }
    out
}

/// Inverts the interleaving of one OFDM symbol.
///
/// # Panics
/// Panics if `bits.len() != n_cbps`.
pub fn deinterleave(bits: &[u8], n_cbps: usize, n_bpsc: usize) -> Vec<u8> {
    assert_eq!(
        bits.len(),
        n_cbps,
        "deinterleaver needs exactly one symbol of bits"
    );
    let perm = permutation(n_cbps, n_bpsc);
    let mut out = vec![0u8; n_cbps];
    for (k, &p) in perm.iter().enumerate() {
        out[k] = bits[p];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// (n_cbps, n_bpsc) pairs for BPSK, QPSK, 16-QAM and 64-QAM at 48 data
    /// subcarriers.
    const CONFIGS: [(usize, usize); 4] = [(48, 1), (96, 2), (192, 4), (288, 6)];

    #[test]
    fn permutation_is_a_bijection() {
        for (n_cbps, n_bpsc) in CONFIGS {
            let perm = permutation(n_cbps, n_bpsc);
            let mut seen = vec![false; n_cbps];
            for &p in &perm {
                assert!(p < n_cbps);
                assert!(!seen[p], "duplicate output index {p}");
                seen[p] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn interleave_deinterleave_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for (n_cbps, n_bpsc) in CONFIGS {
            let bits: Vec<u8> = (0..n_cbps).map(|_| rng.gen_range(0..=1u8)).collect();
            let inter = interleave(&bits, n_cbps, n_bpsc);
            assert_eq!(deinterleave(&inter, n_cbps, n_bpsc), bits);
        }
    }

    #[test]
    fn constant_sequences_are_fixed_points() {
        // The §2.4 property: all-ones and all-zeros are unchanged.
        for (n_cbps, n_bpsc) in CONFIGS {
            let ones = vec![1u8; n_cbps];
            assert_eq!(interleave(&ones, n_cbps, n_bpsc), ones);
            let zeros = vec![0u8; n_cbps];
            assert_eq!(interleave(&zeros, n_cbps, n_bpsc), zeros);
        }
    }

    #[test]
    fn adjacent_bits_are_separated() {
        // Adjacent coded bits must land at least a few positions apart for
        // the interleaver to provide frequency diversity.
        let (n_cbps, n_bpsc) = (192, 4);
        let perm = permutation(n_cbps, n_bpsc);
        for k in 0..n_cbps - 1 {
            let d = (perm[k] as isize - perm[k + 1] as isize).unsigned_abs();
            assert!(d >= 2, "adjacent coded bits mapped {d} apart at k={k}");
        }
    }

    #[test]
    fn known_first_entries_for_bpsk() {
        // For n_cbps = 48, n_bpsc = 1: perm[k] = 3*(k mod 16) + k/16.
        let perm = permutation(48, 1);
        assert_eq!(perm[0], 0);
        assert_eq!(perm[1], 3);
        assert_eq!(perm[2], 6);
        assert_eq!(perm[16], 1);
        assert_eq!(perm[17], 4);
        assert_eq!(perm[47], 47);
    }

    #[test]
    #[should_panic(expected = "exactly one symbol")]
    fn wrong_length_panics() {
        let _ = interleave(&[1, 0, 1], 48, 1);
    }
}
