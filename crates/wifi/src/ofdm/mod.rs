//! The 802.11g (ERP-OFDM) physical layer and the Interscatter AM downlink.
//!
//! The downlink direction of Interscatter (§2.4 of the paper) cannot use a
//! conventional Wi-Fi receiver at the tag: decoding OFDM needs an accurate
//! RF oscillator and consumes milliwatts. Instead, the Wi-Fi *transmitter*
//! is coaxed into producing an amplitude-modulated signal that a passive
//! envelope detector can decode. The trick exploits each stage of the
//! 802.11g encoding chain:
//!
//! 1. the frame-synchronous **scrambler** is predictable (and on Atheros
//!    chipsets either incrementing or fixable), so the app-layer payload can
//!    be pre-compensated;
//! 2. the rate-1/2 **convolutional coder** maps an all-ones (all-zeros)
//!    input to an all-ones (all-zeros) output;
//! 3. the **interleaver** permutes an all-equal bit sequence onto itself;
//! 4. the **QAM mapper** then places the same point on every data
//!    subcarrier, and the 64-point IFFT of a constant spectrum is an
//!    impulse — a "constant OFDM symbol" with almost no envelope except its
//!    first sample.
//!
//! Modules: [`scrambler`], [`convolutional`], [`interleaver`], [`symbol`]
//! (subcarrier mapping + IFFT + cyclic prefix), [`ppdu`] (rates and the
//! full TX/RX chain) and [`am`] (payload crafting for the AM downlink and
//! the scrambler-seed predictor of §4.4).

pub mod am;
pub mod convolutional;
pub mod interleaver;
pub mod ppdu;
pub mod scrambler;
pub mod symbol;

pub use ppdu::{OfdmRate, OfdmTransmitter};

/// OFDM sample rate for 20 MHz 802.11g channels.
pub const OFDM_SAMPLE_RATE: f64 = 20e6;

/// Duration of one OFDM symbol including the cyclic prefix (4 µs).
pub const SYMBOL_DURATION_S: f64 = 4e-6;

/// Number of data subcarriers per OFDM symbol.
pub const DATA_SUBCARRIERS: usize = 48;

/// Number of pilot subcarriers per OFDM symbol.
pub const PILOT_SUBCARRIERS: usize = 4;
