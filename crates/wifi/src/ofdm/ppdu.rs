//! The 802.11g OFDM data-field chain: rates, scrambling, coding,
//! interleaving, symbol assembly, and the matching receiver used in tests.
//!
//! The downlink experiments use the 36 Mbps mode (16-QAM, rate 3/4) because
//! 16/64-QAM keeps the "random" OFDM symbols high-amplitude (paper §2.4 and
//! §4.4). The chain here produces baseband samples at 20 MS/s for the DATA
//! field; the legacy preamble and SIGNAL symbol are represented by a
//! fixed-length random-symbol prologue since the downlink receiver is a
//! peak detector that only reacts to symbol envelopes.

use super::convolutional::{encode, viterbi_decode, CodeRate};
use super::interleaver::{deinterleave, interleave};
use super::scrambler::OfdmScrambler;
use super::symbol::{OfdmSymbolProcessor, SYMBOL_LEN};
use crate::WifiError;
use interscatter_dsp::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};
use interscatter_dsp::constellation::Modulation;
use interscatter_dsp::Cplx;

/// The eight ERP-OFDM rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfdmRate {
    /// 6 Mbps — BPSK, rate 1/2.
    Mbps6,
    /// 9 Mbps — BPSK, rate 3/4.
    Mbps9,
    /// 12 Mbps — QPSK, rate 1/2.
    Mbps12,
    /// 18 Mbps — QPSK, rate 3/4.
    Mbps18,
    /// 24 Mbps — 16-QAM, rate 1/2.
    Mbps24,
    /// 36 Mbps — 16-QAM, rate 3/4 (the downlink experiments' rate).
    Mbps36,
    /// 48 Mbps — 64-QAM, rate 2/3.
    Mbps48,
    /// 54 Mbps — 64-QAM, rate 3/4.
    Mbps54,
}

impl OfdmRate {
    /// All rates, slowest first.
    pub const ALL: [OfdmRate; 8] = [
        OfdmRate::Mbps6,
        OfdmRate::Mbps9,
        OfdmRate::Mbps12,
        OfdmRate::Mbps18,
        OfdmRate::Mbps24,
        OfdmRate::Mbps36,
        OfdmRate::Mbps48,
        OfdmRate::Mbps54,
    ];

    /// Data rate in bits per second.
    pub fn bits_per_second(self) -> f64 {
        match self {
            OfdmRate::Mbps6 => 6e6,
            OfdmRate::Mbps9 => 9e6,
            OfdmRate::Mbps12 => 12e6,
            OfdmRate::Mbps18 => 18e6,
            OfdmRate::Mbps24 => 24e6,
            OfdmRate::Mbps36 => 36e6,
            OfdmRate::Mbps48 => 48e6,
            OfdmRate::Mbps54 => 54e6,
        }
    }

    /// Subcarrier modulation.
    pub fn modulation(self) -> Modulation {
        match self {
            OfdmRate::Mbps6 | OfdmRate::Mbps9 => Modulation::Bpsk,
            OfdmRate::Mbps12 | OfdmRate::Mbps18 => Modulation::Qpsk,
            OfdmRate::Mbps24 | OfdmRate::Mbps36 => Modulation::Qam16,
            OfdmRate::Mbps48 | OfdmRate::Mbps54 => Modulation::Qam64,
        }
    }

    /// Convolutional code rate.
    pub fn code_rate(self) -> CodeRate {
        match self {
            OfdmRate::Mbps6 | OfdmRate::Mbps12 | OfdmRate::Mbps24 => CodeRate::Half,
            OfdmRate::Mbps48 => CodeRate::TwoThirds,
            _ => CodeRate::ThreeQuarters,
        }
    }

    /// Coded bits per OFDM symbol (N_CBPS).
    pub fn coded_bits_per_symbol(self) -> usize {
        48 * self.modulation().bits_per_symbol()
    }

    /// Data bits per OFDM symbol (N_DBPS).
    pub fn data_bits_per_symbol(self) -> usize {
        let (k, n) = self.code_rate().as_fraction();
        self.coded_bits_per_symbol() * k / n
    }
}

/// A generated OFDM DATA-field waveform.
#[derive(Debug, Clone)]
pub struct OfdmFrame {
    /// Baseband samples at 20 MS/s.
    pub samples: Vec<Cplx>,
    /// Number of OFDM symbols in the DATA field.
    pub num_symbols: usize,
    /// The rate used.
    pub rate: OfdmRate,
    /// The scrambler seed used.
    pub scrambler_seed: u8,
    /// The data bits (service field + PSDU + tail + pad) before scrambling.
    pub data_bits: Vec<u8>,
}

impl OfdmFrame {
    /// Frame airtime in seconds (DATA field only).
    pub fn airtime_s(&self) -> f64 {
        self.num_symbols as f64 * super::SYMBOL_DURATION_S
    }
}

/// The 802.11g DATA-field transmitter.
#[derive(Debug, Clone)]
pub struct OfdmTransmitter {
    /// Transmission rate.
    pub rate: OfdmRate,
    /// Scrambler seed for the next frame.
    pub scrambler_seed: u8,
}

impl OfdmTransmitter {
    /// Creates a transmitter at the given rate with a fixed scrambler seed.
    pub fn new(rate: OfdmRate, scrambler_seed: u8) -> Self {
        OfdmTransmitter {
            rate,
            scrambler_seed,
        }
    }

    /// Assembles the DATA-field bit stream: 16 service bits (zero), the PSDU
    /// bits, 6 tail bits, and pad bits up to a whole number of symbols.
    pub fn assemble_data_bits(&self, psdu: &[u8]) -> Vec<u8> {
        let mut bits = vec![0u8; 16];
        bits.extend(bytes_to_bits_lsb(psdu));
        bits.extend(vec![0u8; 6]);
        let n_dbps = self.rate.data_bits_per_symbol();
        let rem = bits.len() % n_dbps;
        if rem != 0 {
            bits.extend(vec![0u8; n_dbps - rem]);
        }
        bits
    }

    /// Transmits a PSDU, producing the DATA-field waveform.
    pub fn transmit(&self, psdu: &[u8]) -> Result<OfdmFrame, WifiError> {
        let data_bits = self.assemble_data_bits(psdu);
        self.transmit_raw_bits(&data_bits)
    }

    /// Transmits an already-assembled DATA-field bit stream (must be a
    /// multiple of the data bits per symbol). The AM crafting layer uses
    /// this entry point because it needs symbol-exact control of the bits.
    pub fn transmit_raw_bits(&self, data_bits: &[u8]) -> Result<OfdmFrame, WifiError> {
        let n_dbps = self.rate.data_bits_per_symbol();
        if data_bits.is_empty() || !data_bits.len().is_multiple_of(n_dbps) {
            return Err(WifiError::InvalidHeader(
                "DATA bits must be a non-empty multiple of N_DBPS",
            ));
        }
        let num_symbols = data_bits.len() / n_dbps;
        // Scramble the whole data field with the frame-synchronous scrambler.
        let mut scrambler = OfdmScrambler::new(self.scrambler_seed);
        let scrambled = scrambler.scramble(data_bits);

        let n_cbps = self.rate.coded_bits_per_symbol();
        let n_bpsc = self.rate.modulation().bits_per_symbol();
        let processor = OfdmSymbolProcessor::new(self.rate.modulation())?;

        // The convolutional encoder runs continuously over the whole DATA
        // field (its memory carries across OFDM symbols — the detail §2.4
        // works around by forcing the six data bits preceding a constant
        // symbol); the coded stream is then interleaved one symbol at a time.
        let coded = encode(&scrambled, self.rate.code_rate());
        debug_assert_eq!(coded.len(), num_symbols * n_cbps);
        let mut samples = Vec::with_capacity(num_symbols * SYMBOL_LEN);
        for (sym_idx, chunk) in coded.chunks(n_cbps).enumerate() {
            let interleaved = interleave(chunk, n_cbps, n_bpsc);
            samples.extend(processor.modulate_symbol(&interleaved, sym_idx)?);
        }
        Ok(OfdmFrame {
            samples,
            num_symbols,
            rate: self.rate,
            scrambler_seed: self.scrambler_seed,
            data_bits: data_bits.to_vec(),
        })
    }
}

/// A test-oriented OFDM receiver assuming perfect timing and no channel
/// distortion beyond scaling/noise: strips the cyclic prefix, FFTs, demaps,
/// deinterleaves, Viterbi-decodes per symbol and descrambles.
#[derive(Debug, Clone)]
pub struct OfdmReceiver {
    /// Expected rate.
    pub rate: OfdmRate,
    /// Expected scrambler seed.
    pub scrambler_seed: u8,
}

impl OfdmReceiver {
    /// Creates a receiver matching a transmitter's configuration.
    pub fn new(rate: OfdmRate, scrambler_seed: u8) -> Self {
        OfdmReceiver {
            rate,
            scrambler_seed,
        }
    }

    /// Recovers the DATA-field bits from a waveform produced by
    /// [`OfdmTransmitter::transmit_raw_bits`].
    pub fn receive_data_bits(&self, samples: &[Cplx]) -> Result<Vec<u8>, WifiError> {
        let n_cbps = self.rate.coded_bits_per_symbol();
        let n_bpsc = self.rate.modulation().bits_per_symbol();
        let processor = OfdmSymbolProcessor::new(self.rate.modulation())?;
        let num_symbols = samples.len() / SYMBOL_LEN;
        if num_symbols == 0 {
            return Err(WifiError::TruncatedWaveform {
                have: samples.len(),
                need: SYMBOL_LEN,
            });
        }
        let mut coded = Vec::with_capacity(num_symbols * n_cbps);
        for s in 0..num_symbols {
            let window = &samples[s * SYMBOL_LEN..(s + 1) * SYMBOL_LEN];
            let interleaved = processor.demodulate_symbol(window)?;
            coded.extend(deinterleave(&interleaved, n_cbps, n_bpsc));
        }
        // One Viterbi pass over the whole DATA field (the transmit-side
        // encoder is continuous across symbols).
        let scrambled = viterbi_decode(&coded, self.rate.code_rate(), false)?;
        let mut descrambler = OfdmScrambler::new(self.scrambler_seed);
        Ok(descrambler.scramble(&scrambled))
    }

    /// Recovers the PSDU bytes (assuming the frame was built with
    /// [`OfdmTransmitter::transmit`], i.e. 16 service bits precede the PSDU).
    pub fn receive_psdu(&self, samples: &[Cplx], psdu_len: usize) -> Result<Vec<u8>, WifiError> {
        let bits = self.receive_data_bits(samples)?;
        let needed = 16 + psdu_len * 8;
        if bits.len() < needed {
            return Err(WifiError::TruncatedWaveform {
                have: bits.len(),
                need: needed,
            });
        }
        Ok(bits_to_bytes_lsb(&bits[16..16 + psdu_len * 8]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rate_table_is_consistent() {
        // N_DBPS for the eight rates: 24, 36, 48, 72, 96, 144, 192, 216.
        let expected = [24, 36, 48, 72, 96, 144, 192, 216];
        for (rate, &dbps) in OfdmRate::ALL.iter().zip(&expected) {
            assert_eq!(rate.data_bits_per_symbol(), dbps, "{rate:?}");
            // bits/s = N_DBPS / 4 µs.
            let implied = rate.data_bits_per_symbol() as f64 / 4e-6;
            assert!((implied - rate.bits_per_second()).abs() < 1.0, "{rate:?}");
        }
    }

    #[test]
    fn frame_size_and_airtime() {
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x25);
        let psdu = vec![0xA5u8; 100];
        let frame = tx.transmit(&psdu).unwrap();
        // 16 + 800 + 6 = 822 bits -> ceil(822/144) = 6 symbols.
        assert_eq!(frame.num_symbols, 6);
        assert_eq!(frame.samples.len(), 6 * SYMBOL_LEN);
        assert!((frame.airtime_s() - 24e-6).abs() < 1e-12);
    }

    #[test]
    fn round_trip_every_rate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for rate in OfdmRate::ALL {
            let psdu: Vec<u8> = (0..60).map(|_| rng.gen()).collect();
            let tx = OfdmTransmitter::new(rate, 0x3C);
            let frame = tx.transmit(&psdu).unwrap();
            let rx = OfdmReceiver::new(rate, 0x3C);
            let back = rx.receive_psdu(&frame.samples, psdu.len()).unwrap();
            assert_eq!(back, psdu, "{rate:?}");
        }
    }

    #[test]
    fn wrong_seed_corrupts_descrambling() {
        let psdu = vec![0x77u8; 40];
        let tx = OfdmTransmitter::new(OfdmRate::Mbps12, 0x19);
        let frame = tx.transmit(&psdu).unwrap();
        let rx = OfdmReceiver::new(OfdmRate::Mbps12, 0x20);
        let back = rx.receive_psdu(&frame.samples, psdu.len()).unwrap();
        assert_ne!(
            back, psdu,
            "a wrong frame-synchronous seed must corrupt the payload"
        );
    }

    #[test]
    fn raw_bits_must_be_symbol_aligned() {
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x11);
        assert!(tx.transmit_raw_bits(&[]).is_err());
        assert!(tx.transmit_raw_bits(&[0u8; 100]).is_err());
        assert!(tx.transmit_raw_bits(&[0u8; 144]).is_ok());
    }

    #[test]
    fn receiver_rejects_short_input() {
        let rx = OfdmReceiver::new(OfdmRate::Mbps36, 0x11);
        assert!(rx.receive_data_bits(&[Cplx::ZERO; 10]).is_err());
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x11);
        let frame = tx.transmit(&[0u8; 10]).unwrap();
        assert!(rx.receive_psdu(&frame.samples, 500).is_err());
    }

    #[test]
    fn noise_tolerance_at_36mbps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let psdu: Vec<u8> = (0..80).map(|_| rng.gen()).collect();
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x2F);
        let frame = tx.transmit(&psdu).unwrap();
        let sigma = 0.03;
        let noisy: Vec<Cplx> = frame
            .samples
            .iter()
            .map(|&s| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * sigma;
                s + Cplx::new(
                    r * (2.0 * std::f64::consts::PI * u2).cos(),
                    r * (2.0 * std::f64::consts::PI * u2).sin(),
                )
            })
            .collect();
        let rx = OfdmReceiver::new(OfdmRate::Mbps36, 0x2F);
        let back = rx.receive_psdu(&noisy, psdu.len()).unwrap();
        assert_eq!(back, psdu);
    }
}
