//! The 802.11a/g frame-synchronous scrambler.
//!
//! Unlike the self-synchronising 802.11b scrambler, the OFDM PHY scrambles
//! the DATA field with a free-running 7-bit LFSR (x^7 + x^4 + 1) whose seed
//! is chosen per frame and conveyed implicitly through the SERVICE field's
//! seven zero bits. The Interscatter downlink needs to *predict* the
//! scrambling sequence so the application payload can be chosen to make the
//! scrambled bits all-ones or all-zeros within selected OFDM symbols (§2.4).
//! §4.4 of the paper observes that several Atheros chipsets simply increment
//! the seed between frames, and that ath5k cards can pin it; both behaviours
//! are modelled in [`SeedPolicy`].

use interscatter_dsp::lfsr::Lfsr7;

/// A frame-synchronous scrambler for the OFDM DATA field.
#[derive(Debug, Clone, Copy)]
pub struct OfdmScrambler {
    register: Lfsr7,
}

impl OfdmScrambler {
    /// Creates a scrambler with a 7-bit non-zero seed.
    ///
    /// A zero seed would generate the all-zero sequence, which the standard
    /// forbids; it is accepted here (the hardware register cannot express it
    /// being "invalid") but [`OfdmScrambler::is_valid_seed`] reports it.
    pub fn new(seed: u8) -> Self {
        OfdmScrambler {
            register: Lfsr7::new(seed),
        }
    }

    /// Whether a seed is valid per the standard (non-zero, 7 bits).
    pub fn is_valid_seed(seed: u8) -> bool {
        seed != 0 && seed < 128
    }

    /// Generates the next scrambling bit.
    pub fn next_bit(&mut self) -> u8 {
        // The 802.11 scrambler output is the XOR of taps x^7 and x^4, which
        // for the Fibonacci register in `Lfsr7` equals the feedback bit. The
        // register output bit (position 6) XOR position 3 gives the same
        // value one step earlier; stepping the register and XORing the two
        // monitored positions keeps the implementation aligned with the
        // standard's schematic.
        let state = self.register.state();
        let out = ((state >> 6) & 1) ^ ((state >> 3) & 1);
        let _ = self.register.step();
        out
    }

    /// Generates `n` scrambling bits.
    pub fn sequence(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Scrambles (or descrambles — XOR is involutive) a bit stream.
    pub fn scramble(&mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter().map(|&b| (b & 1) ^ self.next_bit()).collect()
    }
}

/// How a chipset chooses scrambler seeds across frames (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedPolicy {
    /// The seed increments by one between frames (observed on Atheros
    /// AR5001G / AR5007G / AR9580), wrapping within 1..=127.
    Incrementing {
        /// Seed used for the first frame.
        start: u8,
    },
    /// The seed is pinned to a fixed value (achievable on ath5k by setting
    /// the scrambler-control register).
    Fixed {
        /// The pinned seed.
        seed: u8,
    },
    /// The seed is drawn pseudorandomly per frame — the standard-compliant
    /// behaviour that defeats prediction (used as a baseline).
    Random,
}

impl SeedPolicy {
    /// The seed the chipset will use for frame number `frame_index`
    /// (0-based). For [`SeedPolicy::Random`] this models an unknown seed by
    /// hashing the index; callers that need true unpredictability should
    /// treat the return value as unknown.
    pub fn seed_for_frame(&self, frame_index: u64) -> u8 {
        match self {
            SeedPolicy::Incrementing { start } => {
                let offset = (frame_index % 127) as u16;
                let s = (u16::from(*start) - 1 + offset) % 127 + 1;
                s as u8
            }
            SeedPolicy::Fixed { seed } => *seed,
            SeedPolicy::Random => {
                // A small integer hash standing in for an unpredictable seed.
                let mut x = frame_index
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x5851);
                x ^= x >> 33;
                ((x % 127) + 1) as u8
            }
        }
    }

    /// Whether an observer who has seen the seed of frame `n` can predict
    /// the seed of frame `n+1`.
    pub fn is_predictable(&self) -> bool {
        !matches!(self, SeedPolicy::Random)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrambling_is_involutive() {
        let data: Vec<u8> = (0..300).map(|i| ((i * 31) % 7 == 0) as u8).collect();
        let mut a = OfdmScrambler::new(0x5D);
        let scrambled = a.scramble(&data);
        assert_ne!(scrambled, data);
        let mut b = OfdmScrambler::new(0x5D);
        assert_eq!(b.scramble(&scrambled), data);
    }

    #[test]
    fn sequence_has_period_127() {
        let mut s = OfdmScrambler::new(0x01);
        let seq = s.sequence(254);
        assert_eq!(&seq[..127], &seq[127..]);
        // Balanced: 64 ones per period for a maximal-length LFSR.
        let ones: usize = seq[..127].iter().map(|&b| usize::from(b)).sum();
        assert_eq!(ones, 64);
    }

    #[test]
    fn different_seeds_give_shifted_sequences() {
        let mut a = OfdmScrambler::new(0x11);
        let mut b = OfdmScrambler::new(0x12);
        assert_ne!(a.sequence(64), b.sequence(64));
    }

    #[test]
    fn seed_validity() {
        assert!(!OfdmScrambler::is_valid_seed(0));
        assert!(OfdmScrambler::is_valid_seed(1));
        assert!(OfdmScrambler::is_valid_seed(127));
        assert!(!OfdmScrambler::is_valid_seed(128));
    }

    #[test]
    fn incrementing_policy_wraps_within_1_to_127() {
        let policy = SeedPolicy::Incrementing { start: 125 };
        assert_eq!(policy.seed_for_frame(0), 125);
        assert_eq!(policy.seed_for_frame(1), 126);
        assert_eq!(policy.seed_for_frame(2), 127);
        assert_eq!(policy.seed_for_frame(3), 1);
        assert!(policy.is_predictable());
        for i in 0..300 {
            let s = policy.seed_for_frame(i);
            assert!((1..=127).contains(&s));
        }
    }

    #[test]
    fn fixed_policy_never_changes() {
        let policy = SeedPolicy::Fixed { seed: 0x2A };
        for i in 0..10 {
            assert_eq!(policy.seed_for_frame(i), 0x2A);
        }
        assert!(policy.is_predictable());
    }

    #[test]
    fn random_policy_is_unpredictable_and_in_range() {
        let policy = SeedPolicy::Random;
        assert!(!policy.is_predictable());
        let seeds: Vec<u8> = (0..50).map(|i| policy.seed_for_frame(i)).collect();
        assert!(seeds.iter().all(|&s| (1..=127).contains(&s)));
        // Not all equal, and not simply incrementing.
        assert!(seeds.windows(2).any(|w| w[1] != w[0].wrapping_add(1)));
        let mut distinct = seeds.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() > 10);
    }
}
