//! OFDM symbol assembly: subcarrier mapping, 64-point IFFT, cyclic prefix.
//!
//! Each 802.11g OFDM symbol carries 48 data subcarriers and 4 pilots on a
//! 64-point IFFT grid (subcarriers −26..−1 and 1..26; DC and the band edges
//! are unused). The time-domain symbol is 64 samples plus a 16-sample cyclic
//! prefix at 20 MS/s — the 4 µs granularity at which the downlink AM
//! encoding operates (paper §2.4 and Fig. 7/8).

use crate::WifiError;
use interscatter_dsp::constellation::Modulation;
use interscatter_dsp::fft::Fft;
use interscatter_dsp::Cplx;

/// IFFT size.
pub const FFT_SIZE: usize = 64;

/// Cyclic-prefix length in samples.
pub const CP_LEN: usize = 16;

/// Samples per OFDM symbol including the cyclic prefix.
pub const SYMBOL_LEN: usize = FFT_SIZE + CP_LEN;

/// Logical indices (−26..=26, excluding 0 and pilots) of the 48 data
/// subcarriers, in the order coded bits are mapped onto them.
pub fn data_subcarrier_indices() -> Vec<i32> {
    let pilots = [-21, -7, 7, 21];
    (-26..=26)
        .filter(|&k| k != 0 && !pilots.contains(&k))
        .collect()
}

/// Logical indices of the four pilot subcarriers.
pub const PILOT_INDICES: [i32; 4] = [-21, -7, 7, 21];

/// Pilot polarity values for the first few symbols (the standard cycles a
/// 127-element PN sequence; the repeating prefix used here is enough for the
/// envelope-domain behaviour the downlink experiments need).
const PILOT_POLARITY: [f64; 8] = [1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, 1.0];

/// Converts a logical subcarrier index (−32..=31) to an FFT bin (0..=63).
fn bin_of(logical: i32) -> usize {
    ((logical + FFT_SIZE as i32) % FFT_SIZE as i32) as usize
}

/// An OFDM symbol modulator/demodulator pair sharing one FFT plan.
#[derive(Debug, Clone)]
pub struct OfdmSymbolProcessor {
    fft: Fft,
    modulation: Modulation,
}

impl OfdmSymbolProcessor {
    /// Creates a processor for the given data-subcarrier modulation.
    pub fn new(modulation: Modulation) -> Result<Self, WifiError> {
        Ok(OfdmSymbolProcessor {
            fft: Fft::new(FFT_SIZE)?,
            modulation,
        })
    }

    /// Data-subcarrier modulation.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// Coded bits carried per OFDM symbol (N_CBPS).
    pub fn coded_bits_per_symbol(&self) -> usize {
        48 * self.modulation.bits_per_symbol()
    }

    /// Maps one symbol's worth of interleaved coded bits to time-domain
    /// samples (CP + 64 samples). `symbol_index` selects the pilot polarity.
    pub fn modulate_symbol(
        &self,
        coded_bits: &[u8],
        symbol_index: usize,
    ) -> Result<Vec<Cplx>, WifiError> {
        let n_cbps = self.coded_bits_per_symbol();
        if coded_bits.len() != n_cbps {
            return Err(WifiError::TruncatedWaveform {
                have: coded_bits.len(),
                need: n_cbps,
            });
        }
        let points = self.modulation.map_stream(coded_bits);
        let mut bins = vec![Cplx::ZERO; FFT_SIZE];
        for (idx, &point) in data_subcarrier_indices().iter().zip(points.iter()) {
            bins[bin_of(*idx)] = point;
        }
        let polarity = PILOT_POLARITY[symbol_index % PILOT_POLARITY.len()];
        for &p in &PILOT_INDICES {
            bins[bin_of(p)] = Cplx::real(polarity);
        }
        let time = self.fft.inverse_vec(&bins)?;
        // Scale so the average sample power is comparable across symbols
        // (IFFT normalisation already divides by N; multiply back by sqrt(N)
        // to keep unit average power for a unit-energy constellation).
        let scale = (FFT_SIZE as f64).sqrt();
        let time: Vec<Cplx> = time.into_iter().map(|s| s * scale).collect();
        let mut out = Vec::with_capacity(SYMBOL_LEN);
        out.extend_from_slice(&time[FFT_SIZE - CP_LEN..]);
        out.extend_from_slice(&time);
        Ok(out)
    }

    /// Demodulates one received symbol (CP + 64 samples, perfectly aligned)
    /// back into hard-decision interleaved coded bits.
    pub fn demodulate_symbol(&self, samples: &[Cplx]) -> Result<Vec<u8>, WifiError> {
        if samples.len() < SYMBOL_LEN {
            return Err(WifiError::TruncatedWaveform {
                have: samples.len(),
                need: SYMBOL_LEN,
            });
        }
        let body = &samples[CP_LEN..SYMBOL_LEN];
        let scale = 1.0 / (FFT_SIZE as f64).sqrt();
        let scaled: Vec<Cplx> = body.iter().map(|&s| s * scale).collect();
        let bins = self.fft.forward_vec(&scaled)?;
        let mut bits = Vec::with_capacity(self.coded_bits_per_symbol());
        for &idx in &data_subcarrier_indices() {
            bits.extend(self.modulation.demap(bins[bin_of(idx)]));
        }
        Ok(bits)
    }
}

/// The peak-to-average-power ratio of a sample window in dB — the metric that
/// distinguishes "random" from "constant" OFDM symbols in Fig. 7.
pub fn papr_db(samples: &[Cplx]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mean = interscatter_dsp::iq::mean_power(samples);
    let peak = interscatter_dsp::iq::peak_power(samples);
    if mean <= 0.0 {
        return 0.0;
    }
    interscatter_dsp::units::ratio_to_db(peak / mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn subcarrier_plan_has_48_data_and_4_pilots() {
        let data = data_subcarrier_indices();
        assert_eq!(data.len(), 48);
        assert!(!data.contains(&0));
        for p in PILOT_INDICES {
            assert!(!data.contains(&p));
        }
        // All within the occupied -26..=26 range.
        assert!(data.iter().all(|&k| (-26..=26).contains(&k)));
    }

    #[test]
    fn symbol_round_trip_all_modulations() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for modulation in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let proc = OfdmSymbolProcessor::new(modulation).unwrap();
            let n = proc.coded_bits_per_symbol();
            let bits: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=1u8)).collect();
            let symbol = proc.modulate_symbol(&bits, 0).unwrap();
            assert_eq!(symbol.len(), SYMBOL_LEN);
            let back = proc.demodulate_symbol(&symbol).unwrap();
            assert_eq!(back, bits, "{modulation:?}");
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let proc = OfdmSymbolProcessor::new(Modulation::Qam16).unwrap();
        let bits: Vec<u8> = (0..proc.coded_bits_per_symbol())
            .map(|i| (i % 2) as u8)
            .collect();
        let symbol = proc.modulate_symbol(&bits, 3).unwrap();
        for i in 0..CP_LEN {
            assert!((symbol[i] - symbol[FFT_SIZE + i]).abs() < 1e-12);
        }
    }

    #[test]
    fn wrong_bit_count_is_rejected() {
        let proc = OfdmSymbolProcessor::new(Modulation::Qpsk).unwrap();
        assert!(proc.modulate_symbol(&[1, 0, 1], 0).is_err());
        assert!(proc.demodulate_symbol(&[Cplx::ZERO; 10]).is_err());
    }

    #[test]
    fn constant_bits_compress_energy_into_the_first_sample() {
        // This is Fig. 7: an all-equal constellation across subcarriers IFFTs
        // into (nearly) an impulse, so the symbol body's first sample carries
        // most of the energy. Pilots prevent it from being exact.
        let proc = OfdmSymbolProcessor::new(Modulation::Qam16).unwrap();
        let ones = vec![1u8; proc.coded_bits_per_symbol()];
        let symbol = proc.modulate_symbol(&ones, 0).unwrap();
        let body = &symbol[CP_LEN..];
        let first_power = body[0].norm_sq();
        let rest_power: f64 = body[1..].iter().map(|s| s.norm_sq()).sum();
        assert!(
            first_power > rest_power,
            "first sample should dominate: first {first_power}, rest {rest_power}"
        );
    }

    #[test]
    fn random_bits_spread_energy_across_the_symbol() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let proc = OfdmSymbolProcessor::new(Modulation::Qam16).unwrap();
        let bits: Vec<u8> = (0..proc.coded_bits_per_symbol())
            .map(|_| rng.gen_range(0..=1u8))
            .collect();
        let symbol = proc.modulate_symbol(&bits, 0).unwrap();
        let body = &symbol[CP_LEN..];
        let first_power = body[0].norm_sq();
        let total: f64 = body.iter().map(|s| s.norm_sq()).sum();
        assert!(
            first_power < 0.5 * total,
            "random symbol should not be impulse-like"
        );
        // PAPR of a random symbol is well below that of the constant symbol.
        let ones = vec![1u8; proc.coded_bits_per_symbol()];
        let constant = proc.modulate_symbol(&ones, 0).unwrap();
        assert!(papr_db(&constant) > papr_db(&symbol) + 6.0);
    }

    #[test]
    fn papr_edge_cases() {
        assert_eq!(papr_db(&[]), 0.0);
        assert_eq!(papr_db(&[Cplx::ZERO; 8]), 0.0);
        assert!((papr_db(&[Cplx::ONE; 8]) - 0.0).abs() < 1e-12);
    }
}
