//! The IEEE 802.15.4 2.4 GHz DSSS chip sequences.
//!
//! Each 4-bit symbol is spread to a 32-chip pseudo-noise sequence. The 16
//! sequences are cyclic shifts (and conjugations) of a single base sequence,
//! which gives them low cross-correlation and lets a receiver decode by
//! picking the best-correlating candidate — the same structure the
//! backscatter tag exploits: the chips are binary, so they can be produced
//! by the impedance switch just like 802.11b chips.

/// Number of chips per 802.15.4 symbol.
pub const CHIPS_PER_SYMBOL: usize = 32;

/// Number of data bits per symbol.
pub const BITS_PER_SYMBOL: usize = 4;

/// The base chip sequence for symbol 0, as specified by IEEE 802.15.4-2015
/// Table 12-1 (chip c0 first).
pub const SYMBOL0_CHIPS: [u8; 32] = [
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
];

/// Returns the 32-chip sequence for a 4-bit symbol value (0–15).
///
/// Symbols 1–7 are cyclic right-shifts of symbol 0 by 4·k chips; symbols
/// 8–15 are the same shifts of symbol 0 with the odd-indexed chips inverted
/// (equivalently, the quadrature chips negated), per the standard.
pub fn chip_sequence(symbol: u8) -> [u8; 32] {
    assert!(symbol < 16, "802.15.4 symbols are 4 bits");
    let shift = usize::from(symbol & 0x7) * 4;
    let mut out = [0u8; 32];
    for (i, slot) in out.iter_mut().enumerate() {
        // Cyclic right shift: out[i] = base[(i - shift) mod 32].
        let src = (i + 32 - shift) % 32;
        let mut chip = SYMBOL0_CHIPS[src];
        if symbol >= 8 && i % 2 == 1 {
            chip ^= 1;
        }
        *slot = chip;
    }
    out
}

/// Correlates a received hard-decision chip sequence against all 16
/// candidates and returns `(best_symbol, agreements)` where `agreements` is
/// the number of matching chip positions for the winner (32 = perfect).
pub fn best_symbol(received: &[u8]) -> (u8, usize) {
    assert_eq!(received.len(), CHIPS_PER_SYMBOL, "expected 32 chips");
    let mut best = (0u8, 0usize);
    for candidate in 0..16u8 {
        let seq = chip_sequence(candidate);
        let agreements = seq
            .iter()
            .zip(received)
            .filter(|(a, b)| (**a & 1) == (**b & 1))
            .count();
        if agreements > best.1 {
            best = (candidate, agreements);
        }
    }
    best
}

/// Converts a nibble stream (two symbols per byte, low nibble first as the
/// standard transmits) to a chip stream.
pub fn spread_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut chips = Vec::with_capacity(bytes.len() * 2 * CHIPS_PER_SYMBOL);
    for &b in bytes {
        chips.extend_from_slice(&chip_sequence(b & 0x0F));
        chips.extend_from_slice(&chip_sequence(b >> 4));
    }
    chips
}

/// Despreads a hard-decision chip stream back to bytes. Trailing chips that
/// do not complete a byte are ignored. Also returns the minimum per-symbol
/// agreement count observed (a link-quality indicator).
pub fn despread_bytes(chips: &[u8]) -> (Vec<u8>, usize) {
    let mut bytes = Vec::new();
    let mut min_agreement = CHIPS_PER_SYMBOL;
    let mut symbols = Vec::new();
    for block in chips.chunks_exact(CHIPS_PER_SYMBOL) {
        let (sym, agree) = best_symbol(block);
        min_agreement = min_agreement.min(agree);
        symbols.push(sym);
    }
    for pair in symbols.chunks_exact(2) {
        bytes.push(pair[0] | (pair[1] << 4));
    }
    if symbols.is_empty() {
        min_agreement = 0;
    }
    (bytes, min_agreement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sixteen_distinct_sequences() {
        let seqs: Vec<[u8; 32]> = (0..16).map(chip_sequence).collect();
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_ne!(seqs[i], seqs[j], "symbols {i} and {j} share a sequence");
            }
        }
    }

    #[test]
    fn sequences_are_balanced_and_low_cross_correlation() {
        for s in 0..16u8 {
            let seq = chip_sequence(s);
            let ones: usize = seq.iter().map(|&c| usize::from(c)).sum();
            assert!((12..=20).contains(&ones), "symbol {s} has {ones} ones");
        }
        // Cross-correlation (agreement count) between different symbols stays
        // well below 32.
        for i in 0..16u8 {
            for j in 0..16u8 {
                if i == j {
                    continue;
                }
                let a = chip_sequence(i);
                let b = chip_sequence(j);
                let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
                assert!(agree <= 24, "symbols {i}/{j} agree on {agree} chips");
            }
        }
    }

    #[test]
    fn best_symbol_recovers_clean_chips() {
        for s in 0..16u8 {
            let (sym, agree) = best_symbol(&chip_sequence(s));
            assert_eq!(sym, s);
            assert_eq!(agree, 32);
        }
    }

    #[test]
    fn despreading_tolerates_chip_errors() {
        // Flip 6 of 32 chips: the correct symbol still wins thanks to the
        // ≥8-chip separation between sequences.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for s in 0..16u8 {
            let mut chips = chip_sequence(s);
            let mut flipped = 0;
            while flipped < 6 {
                let idx = rng.gen_range(0..32usize);
                chips[idx] ^= 1;
                flipped += 1;
            }
            let (sym, agree) = best_symbol(&chips);
            assert_eq!(sym, s, "symbol {s} misdecoded with 6 chip errors");
            assert!(agree >= 26);
        }
    }

    #[test]
    fn byte_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let bytes: Vec<u8> = (0..40).map(|_| rng.gen()).collect();
        let chips = spread_bytes(&bytes);
        assert_eq!(chips.len(), bytes.len() * 64);
        let (back, min_agree) = despread_bytes(&chips);
        assert_eq!(back, bytes);
        assert_eq!(min_agree, 32);
    }

    #[test]
    fn empty_despread() {
        let (bytes, agree) = despread_bytes(&[]);
        assert!(bytes.is_empty());
        assert_eq!(agree, 0);
    }

    #[test]
    #[should_panic(expected = "4 bits")]
    fn symbol_out_of_range_panics() {
        let _ = chip_sequence(16);
    }
}
