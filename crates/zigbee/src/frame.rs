//! IEEE 802.15.4 PPDU framing.
//!
//! A 2.4 GHz 802.15.4 frame consists of a synchronisation header (4-byte
//! preamble of zeros plus the 0xA7 start-of-frame delimiter), a one-byte
//! frame-length field, and the PSDU whose last two bytes are the CRC-16
//! frame check sequence. The backscatter tag synthesizes this framing so a
//! commodity CC2531 receiver accepts the packet (paper §4.5).

use crate::ZigbeeError;
use interscatter_dsp::crc::crc16_802154;

/// Preamble length in bytes (all zero).
pub const PREAMBLE_BYTES: usize = 4;

/// The start-of-frame delimiter.
pub const SFD: u8 = 0xA7;

/// Maximum PSDU length in bytes (including the 2-byte FCS).
pub const MAX_PSDU_BYTES: usize = 127;

/// A ZigBee PHY frame (PSDU = MAC payload + FCS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZigbeeFrame {
    /// MAC-layer payload (FCS excluded).
    pub payload: Vec<u8>,
}

impl ZigbeeFrame {
    /// Creates a frame, validating the payload length (≤ 125 bytes so the
    /// PSDU with FCS fits in 127).
    pub fn new(payload: &[u8]) -> Result<Self, ZigbeeError> {
        if payload.len() + 2 > MAX_PSDU_BYTES {
            return Err(ZigbeeError::PayloadTooLong {
                requested: payload.len(),
                max: MAX_PSDU_BYTES - 2,
            });
        }
        Ok(ZigbeeFrame {
            payload: payload.to_vec(),
        })
    }

    /// The PSDU: payload followed by the little-endian CRC-16 FCS.
    pub fn psdu(&self) -> Vec<u8> {
        let mut psdu = self.payload.clone();
        let fcs = crc16_802154(&self.payload);
        psdu.extend_from_slice(&fcs.to_le_bytes());
        psdu
    }

    /// Serialises the full PPDU byte stream: preamble, SFD, length, PSDU.
    pub fn to_ppdu_bytes(&self) -> Vec<u8> {
        let psdu = self.psdu();
        let mut bytes = vec![0u8; PREAMBLE_BYTES];
        bytes.push(SFD);
        bytes.push(psdu.len() as u8);
        bytes.extend(psdu);
        bytes
    }

    /// Parses a PPDU byte stream (as produced by [`ZigbeeFrame::to_ppdu_bytes`]
    /// or recovered by the receiver), locating the SFD and verifying the FCS.
    pub fn from_ppdu_bytes(bytes: &[u8]) -> Result<Self, ZigbeeError> {
        // Find the SFD: the first non-zero byte after at least one preamble
        // byte must be the SFD.
        let sfd_pos = bytes
            .iter()
            .position(|&b| b == SFD)
            .ok_or(ZigbeeError::SfdNotFound)?;
        if sfd_pos + 2 > bytes.len() {
            return Err(ZigbeeError::TruncatedWaveform {
                have: bytes.len(),
                need: sfd_pos + 2,
            });
        }
        let length = bytes[sfd_pos + 1] as usize;
        if !(2..=MAX_PSDU_BYTES).contains(&length) {
            return Err(ZigbeeError::SfdNotFound);
        }
        let psdu_start = sfd_pos + 2;
        if bytes.len() < psdu_start + length {
            return Err(ZigbeeError::TruncatedWaveform {
                have: bytes.len(),
                need: psdu_start + length,
            });
        }
        let psdu = &bytes[psdu_start..psdu_start + length];
        let (payload, fcs_bytes) = psdu.split_at(length - 2);
        let expected = crc16_802154(payload).to_le_bytes();
        if fcs_bytes != expected {
            return Err(ZigbeeError::FcsMismatch);
        }
        Ok(ZigbeeFrame {
            payload: payload.to_vec(),
        })
    }

    /// Number of PPDU bytes on the air.
    pub fn ppdu_len_bytes(&self) -> usize {
        PREAMBLE_BYTES + 1 + 1 + self.payload.len() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let payload: Vec<u8> = (0..50u8).collect();
        let frame = ZigbeeFrame::new(&payload).unwrap();
        let bytes = frame.to_ppdu_bytes();
        assert_eq!(bytes.len(), frame.ppdu_len_bytes());
        let back = ZigbeeFrame::from_ppdu_bytes(&bytes).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn payload_length_limit() {
        assert!(ZigbeeFrame::new(&[0u8; 125]).is_ok());
        assert!(matches!(
            ZigbeeFrame::new(&[0u8; 126]),
            Err(ZigbeeError::PayloadTooLong { .. })
        ));
    }

    #[test]
    fn fcs_detects_corruption() {
        let frame = ZigbeeFrame::new(&[1, 2, 3, 4, 5]).unwrap();
        let mut bytes = frame.to_ppdu_bytes();
        let payload_start = PREAMBLE_BYTES + 2;
        bytes[payload_start + 2] ^= 0x40;
        assert_eq!(
            ZigbeeFrame::from_ppdu_bytes(&bytes).unwrap_err(),
            ZigbeeError::FcsMismatch
        );
    }

    #[test]
    fn missing_sfd_and_truncation() {
        assert!(matches!(
            ZigbeeFrame::from_ppdu_bytes(&[0, 0, 0, 0, 0, 0]),
            Err(ZigbeeError::SfdNotFound)
        ));
        let frame = ZigbeeFrame::new(&[9u8; 20]).unwrap();
        let bytes = frame.to_ppdu_bytes();
        assert!(matches!(
            ZigbeeFrame::from_ppdu_bytes(&bytes[..10]),
            Err(ZigbeeError::TruncatedWaveform { .. })
        ));
        assert!(matches!(
            ZigbeeFrame::from_ppdu_bytes(&bytes[..PREAMBLE_BYTES + 1]),
            Err(ZigbeeError::TruncatedWaveform { .. })
        ));
    }

    #[test]
    fn header_layout() {
        let frame = ZigbeeFrame::new(&[0xAA; 10]).unwrap();
        let bytes = frame.to_ppdu_bytes();
        assert!(bytes[..PREAMBLE_BYTES].iter().all(|&b| b == 0));
        assert_eq!(bytes[PREAMBLE_BYTES], SFD);
        assert_eq!(bytes[PREAMBLE_BYTES + 1], 12); // 10 + 2-byte FCS
    }

    #[test]
    fn empty_payload_is_valid() {
        let frame = ZigbeeFrame::new(&[]).unwrap();
        let bytes = frame.to_ppdu_bytes();
        let back = ZigbeeFrame::from_ppdu_bytes(&bytes).unwrap();
        assert!(back.payload.is_empty());
    }
}
