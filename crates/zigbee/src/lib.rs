//! # interscatter-zigbee
//!
//! An IEEE 802.15.4 (ZigBee) 2.4 GHz physical-layer model for the
//! Interscatter reproduction.
//!
//! §4.5 of the paper demonstrates that the same single-sideband backscatter
//! technique that synthesizes 802.11b can also synthesize ZigBee: the
//! 802.15.4 O-QPSK PHY is — like 802.11b — a constant-envelope,
//! phase-modulated DSSS waveform, so it too can be produced by switching
//! between the tag's four complex impedance states. The paper backscatters a
//! Bluetooth advertisement on BLE channel 38 into a ZigBee packet on ZigBee
//! channel 14 (2.420 GHz, a −6 MHz shift) and receives it on a TI CC2531.
//!
//! Modules:
//!
//! * [`chips`] — the 16 × 32-chip pseudo-noise sequences that spread each
//!   4-bit symbol.
//! * [`oqpsk`] — offset-QPSK half-sine modulation and demodulation at
//!   2 Mchip/s.
//! * [`frame`] — PPDU framing: preamble, SFD, length, payload, CRC-16 FCS.
//! * [`phy`] — the complete transmitter and receiver plus rate/timing
//!   constants (250 kbps, 5 MHz channels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chips;
pub mod frame;
pub mod oqpsk;
pub mod phy;

pub use phy::{ZigbeeReceiver, ZigbeeTransmitter};

/// Errors produced by the ZigBee PHY model.
#[derive(Debug, Clone, PartialEq)]
pub enum ZigbeeError {
    /// Payload exceeds the 127-byte maximum PSDU size (or the 125-byte MAC
    /// payload once the FCS is counted).
    PayloadTooLong {
        /// Bytes requested.
        requested: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// No preamble / start-of-frame delimiter was found.
    SfdNotFound,
    /// The frame check sequence did not validate.
    FcsMismatch,
    /// The waveform was shorter than the structure it should contain.
    TruncatedWaveform {
        /// Samples available.
        have: usize,
        /// Samples needed.
        need: usize,
    },
    /// An underlying DSP error.
    Dsp(interscatter_dsp::DspError),
}

impl core::fmt::Display for ZigbeeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ZigbeeError::PayloadTooLong { requested, max } => {
                write!(
                    f,
                    "PSDU of {requested} bytes exceeds the {max}-byte maximum"
                )
            }
            ZigbeeError::SfdNotFound => write!(f, "no 802.15.4 SFD found"),
            ZigbeeError::FcsMismatch => write!(f, "802.15.4 FCS mismatch"),
            ZigbeeError::TruncatedWaveform { have, need } => {
                write!(f, "waveform truncated: have {have} samples, need {need}")
            }
            ZigbeeError::Dsp(e) => write!(f, "DSP error: {e}"),
        }
    }
}

impl std::error::Error for ZigbeeError {}

impl From<interscatter_dsp::DspError> for ZigbeeError {
    fn from(e: interscatter_dsp::DspError) -> Self {
        ZigbeeError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ZigbeeError::PayloadTooLong {
            requested: 200,
            max: 127
        }
        .to_string()
        .contains("127"));
        assert!(ZigbeeError::SfdNotFound.to_string().contains("SFD"));
        assert!(ZigbeeError::FcsMismatch.to_string().contains("FCS"));
        assert!(ZigbeeError::TruncatedWaveform { have: 5, need: 9 }
            .to_string()
            .contains('9'));
        let e: ZigbeeError = interscatter_dsp::DspError::EmptyInput("x").into();
        assert!(e.to_string().contains("DSP"));
    }
}
