//! Offset-QPSK half-sine modulation for the 802.15.4 2.4 GHz PHY.
//!
//! Chips are split alternately onto the I and Q rails (even-indexed chips on
//! I, odd on Q), each chip is shaped with a half-sine pulse lasting two chip
//! periods, and the Q rail is delayed by one chip period. The result is a
//! constant-envelope waveform (equivalent to MSK), which is why the paper
//! can synthesize it with the same impedance-switching backscatter hardware
//! it uses for 802.11b.

use crate::ZigbeeError;
use interscatter_dsp::Cplx;

/// 802.15.4 2.4 GHz chip rate: 2 Mchip/s.
pub const CHIP_RATE: f64 = 2e6;

/// O-QPSK modulator/demodulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct OqpskConfig {
    /// Output sample rate (must be an integer multiple of the chip rate,
    /// at least 2 samples per chip).
    pub sample_rate: f64,
}

impl Default for OqpskConfig {
    fn default() -> Self {
        OqpskConfig { sample_rate: 8e6 }
    }
}

impl OqpskConfig {
    /// Samples per chip.
    pub fn samples_per_chip(&self) -> usize {
        (self.sample_rate / CHIP_RATE).round() as usize
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ZigbeeError> {
        let spc = self.sample_rate / CHIP_RATE;
        if spc < 2.0 || (spc - spc.round()).abs() > 1e-9 {
            return Err(ZigbeeError::Dsp(
                interscatter_dsp::DspError::InvalidFilterSpec(
                    "sample_rate must be an integer multiple (>=2) of the 2 Mchip/s chip rate",
                ),
            ));
        }
        Ok(())
    }
}

/// Modulates a binary chip stream into O-QPSK half-sine baseband samples.
///
/// The chip count should be even (the 802.15.4 spreading always produces a
/// multiple of 32); an odd final chip is treated as if followed by a zero.
pub fn modulate(chips: &[u8], config: OqpskConfig) -> Result<Vec<Cplx>, ZigbeeError> {
    config.validate()?;
    let spc = config.samples_per_chip();
    if chips.is_empty() {
        return Ok(Vec::new());
    }
    // Each rail gets one chip per 2 chip-periods; the half-sine pulse spans
    // 2 chip-periods (2*spc samples). Total duration: (chips + 1) chip
    // periods to account for the Q-rail offset tail.
    let total = (chips.len() + 2) * spc;
    let mut i_rail = vec![0.0f64; total];
    let mut q_rail = vec![0.0f64; total];
    for (idx, &chip) in chips.iter().enumerate() {
        let level = if chip & 1 == 1 { 1.0 } else { -1.0 };
        let rail_is_i = idx % 2 == 0;
        // The pulse for chip `idx` starts at sample idx*spc on its rail
        // (the Q rail's one-chip delay falls out naturally because odd
        // indices start one chip period later).
        let start = idx * spc;
        for s in 0..2 * spc {
            let t = s as f64 / (2 * spc) as f64; // 0..1 over the pulse
            let pulse = (std::f64::consts::PI * t).sin();
            let target = if rail_is_i { &mut i_rail } else { &mut q_rail };
            if start + s < total {
                target[start + s] += level * pulse;
            }
        }
    }
    Ok(i_rail
        .into_iter()
        .zip(q_rail)
        .map(|(i, q)| Cplx::new(i, q) * std::f64::consts::FRAC_1_SQRT_2)
        .collect())
}

/// Demodulates O-QPSK samples back into hard chip decisions by sampling each
/// rail at its pulse centre. The waveform must start at the first chip (the
/// frame layer handles SFD alignment).
pub fn demodulate(
    samples: &[Cplx],
    num_chips: usize,
    config: OqpskConfig,
) -> Result<Vec<u8>, ZigbeeError> {
    config.validate()?;
    let spc = config.samples_per_chip();
    let mut chips = Vec::with_capacity(num_chips);
    for idx in 0..num_chips {
        // Pulse centre for chip idx is at idx*spc + spc (middle of its
        // 2-chip-period half-sine).
        let centre = idx * spc + spc;
        if centre >= samples.len() {
            return Err(ZigbeeError::TruncatedWaveform {
                have: samples.len(),
                need: centre + 1,
            });
        }
        let value = if idx % 2 == 0 {
            samples[centre].re
        } else {
            samples[centre].im
        };
        chips.push(u8::from(value >= 0.0));
    }
    Ok(chips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn config_validation() {
        assert!(OqpskConfig::default().validate().is_ok());
        assert!(OqpskConfig { sample_rate: 3e6 }.validate().is_err());
        assert!(OqpskConfig { sample_rate: 2e6 }.validate().is_err());
        assert_eq!(OqpskConfig { sample_rate: 8e6 }.samples_per_chip(), 4);
    }

    #[test]
    fn round_trip_random_chips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let chips: Vec<u8> = (0..256).map(|_| rng.gen_range(0..=1u8)).collect();
        let cfg = OqpskConfig::default();
        let wave = modulate(&chips, cfg).unwrap();
        let back = demodulate(&wave, chips.len(), cfg).unwrap();
        assert_eq!(back, chips);
    }

    #[test]
    fn envelope_is_nearly_constant() {
        // O-QPSK with half-sine pulses is MSK-like: after the initial ramp-up
        // the envelope stays near 1/sqrt(2)·sqrt(I²+Q²) ≈ constant.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let chips: Vec<u8> = (0..200).map(|_| rng.gen_range(0..=1u8)).collect();
        let cfg = OqpskConfig { sample_rate: 16e6 };
        let wave = modulate(&chips, cfg).unwrap();
        let spc = cfg.samples_per_chip();
        let steady = &wave[2 * spc..wave.len() - 4 * spc];
        let mean: f64 = steady.iter().map(|s| s.abs()).sum::<f64>() / steady.len() as f64;
        for s in steady {
            assert!(
                (s.abs() - mean).abs() < 0.35 * mean,
                "envelope ripple too large: {} vs mean {mean}",
                s.abs()
            );
        }
    }

    #[test]
    fn empty_and_truncated_inputs() {
        let cfg = OqpskConfig::default();
        assert!(modulate(&[], cfg).unwrap().is_empty());
        let wave = modulate(&[1, 0, 1, 1], cfg).unwrap();
        assert!(matches!(
            demodulate(&wave[..4], 4, cfg),
            Err(ZigbeeError::TruncatedWaveform { .. })
        ));
    }

    #[test]
    fn q_rail_is_offset_from_i_rail() {
        // With a single chip on each rail, the I pulse peaks one chip period
        // before the Q pulse.
        let cfg = OqpskConfig { sample_rate: 8e6 };
        let wave = modulate(&[1, 1], cfg).unwrap();
        let spc = cfg.samples_per_chip();
        let i_peak = (0..wave.len())
            .max_by(|&a, &b| wave[a].re.partial_cmp(&wave[b].re).unwrap())
            .unwrap();
        let q_peak = (0..wave.len())
            .max_by(|&a, &b| wave[a].im.partial_cmp(&wave[b].im).unwrap())
            .unwrap();
        assert_eq!(q_peak as i64 - i_peak as i64, spc as i64);
    }
}
