//! The complete 802.15.4 2.4 GHz transmitter and receiver.
//!
//! Chain: PPDU bytes → nibble spreading (32-chip PN sequences) → O-QPSK
//! half-sine modulation at 2 Mchip/s, and the inverse on receive. The
//! receiver also reports RSSI, which is what the Fig. 14 experiment records
//! at five tag-to-receiver distances.

use crate::chips::{despread_bytes, spread_bytes, CHIPS_PER_SYMBOL};
use crate::frame::ZigbeeFrame;
use crate::oqpsk::{demodulate, modulate, OqpskConfig};
use crate::ZigbeeError;
use interscatter_dsp::iq::rssi_dbm;
use interscatter_dsp::Cplx;

/// 802.15.4 2.4 GHz bit rate (250 kbps).
pub const BIT_RATE: f64 = 250e3;

/// Channel spacing in the 2.4 GHz band (5 MHz).
pub const CHANNEL_SPACING_HZ: f64 = 5e6;

/// Occupied bandwidth of a 2.4 GHz 802.15.4 channel (~2 MHz).
pub const OCCUPIED_BANDWIDTH_HZ: f64 = 2e6;

/// A ZigBee PHY transmitter.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZigbeeTransmitter {
    /// Modulator configuration (sample rate).
    pub config: OqpskConfig,
}

impl ZigbeeTransmitter {
    /// Creates a transmitter producing samples at `sample_rate`.
    pub fn new(sample_rate: f64) -> Self {
        ZigbeeTransmitter {
            config: OqpskConfig { sample_rate },
        }
    }

    /// Generates the baseband waveform for a MAC payload.
    pub fn transmit(&self, payload: &[u8]) -> Result<ZigbeeWaveform, ZigbeeError> {
        let frame = ZigbeeFrame::new(payload)?;
        let ppdu = frame.to_ppdu_bytes();
        let chips = spread_bytes(&ppdu);
        let samples = modulate(&chips, self.config)?;
        Ok(ZigbeeWaveform {
            samples,
            num_chips: chips.len(),
            frame,
        })
    }
}

/// A generated ZigBee waveform together with its framing metadata.
#[derive(Debug, Clone)]
pub struct ZigbeeWaveform {
    /// Baseband samples.
    pub samples: Vec<Cplx>,
    /// Number of chips in the waveform.
    pub num_chips: usize,
    /// The frame the waveform encodes.
    pub frame: ZigbeeFrame,
}

impl ZigbeeWaveform {
    /// Airtime in seconds.
    pub fn airtime_s(&self) -> f64 {
        self.num_chips as f64 / crate::oqpsk::CHIP_RATE
    }
}

/// A received ZigBee frame with link-quality metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedZigbeeFrame {
    /// The decoded MAC payload.
    pub payload: Vec<u8>,
    /// RSSI over the frame, dBm (workspace convention).
    pub rssi_dbm: f64,
    /// Link-quality indicator: minimum per-symbol chip agreement (32 = clean).
    pub lqi: usize,
}

/// A ZigBee PHY receiver.
#[derive(Debug, Clone, Copy)]
pub struct ZigbeeReceiver {
    /// Demodulator configuration (must match the incoming sample rate).
    pub config: OqpskConfig,
    /// Receiver sensitivity in dBm (the CC2531 datasheet value is −97 dBm;
    /// ZigBee's DSSS gives it better sensitivity than Wi-Fi, as §4.5 notes).
    pub sensitivity_dbm: f64,
}

impl Default for ZigbeeReceiver {
    fn default() -> Self {
        ZigbeeReceiver {
            config: OqpskConfig::default(),
            sensitivity_dbm: -97.0,
        }
    }
}

impl ZigbeeReceiver {
    /// Creates a receiver for the given sample rate.
    pub fn new(sample_rate: f64) -> Self {
        ZigbeeReceiver {
            config: OqpskConfig { sample_rate },
            ..Default::default()
        }
    }

    /// Receives a frame from a waveform aligned to the start of the PPDU.
    pub fn receive(&self, samples: &[Cplx]) -> Result<ReceivedZigbeeFrame, ZigbeeError> {
        let rssi = rssi_dbm(samples);
        if rssi < self.sensitivity_dbm {
            return Err(ZigbeeError::SfdNotFound);
        }
        let spc = self.config.samples_per_chip();
        // Conservative upper bound on how many whole chips the waveform holds.
        let num_chips = (samples.len() / spc).saturating_sub(1);
        let usable_chips = num_chips - (num_chips % (2 * CHIPS_PER_SYMBOL));
        if usable_chips == 0 {
            return Err(ZigbeeError::TruncatedWaveform {
                have: samples.len(),
                need: 2 * CHIPS_PER_SYMBOL * spc,
            });
        }
        let chips = demodulate(samples, usable_chips, self.config)?;
        let (bytes, lqi) = despread_bytes(&chips);
        let frame = ZigbeeFrame::from_ppdu_bytes(&bytes)?;
        Ok(ReceivedZigbeeFrame {
            payload: frame.payload,
            rssi_dbm: rssi,
            lqi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::iq::scale;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let payload: Vec<u8> = (0..60).map(|_| rng.gen()).collect();
        let tx = ZigbeeTransmitter::default();
        let wave = tx.transmit(&payload).unwrap();
        let rx = ZigbeeReceiver::default();
        let frame = rx.receive(&wave.samples).unwrap();
        assert_eq!(frame.payload, payload);
        assert_eq!(frame.lqi, 32);
        assert!((frame.rssi_dbm - rssi_dbm(&wave.samples)).abs() < 1e-9);
    }

    #[test]
    fn airtime_matches_250kbps() {
        // PPDU of (4+1+1+20+2)=28 bytes = 56 symbols = 1792 chips = 896 µs;
        // equivalently 28·8 bits / 250 kbps = 896 µs.
        let tx = ZigbeeTransmitter::default();
        let wave = tx.transmit(&[0u8; 20]).unwrap();
        assert!((wave.airtime_s() - 896e-6).abs() < 1e-9);
        let implied_rate = (wave.frame.ppdu_len_bytes() * 8) as f64 / wave.airtime_s();
        assert!((implied_rate - BIT_RATE).abs() < 1.0);
    }

    #[test]
    fn weak_signals_down_to_sensitivity() {
        let tx = ZigbeeTransmitter::default();
        let wave = tx.transmit(&[0x5Au8; 30]).unwrap();
        let rx = ZigbeeReceiver::default();
        // -80 dBm equivalent.
        let weak = scale(&wave.samples, 1e-4);
        let frame = rx.receive(&weak).unwrap();
        assert_eq!(frame.payload, vec![0x5Au8; 30]);
        // Below sensitivity is rejected.
        let too_weak = scale(&wave.samples, 1e-6);
        assert!(rx.receive(&too_weak).is_err());
    }

    #[test]
    fn noise_tolerance() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let payload: Vec<u8> = (0..40).map(|_| rng.gen()).collect();
        let tx = ZigbeeTransmitter::default();
        let wave = tx.transmit(&payload).unwrap();
        let noisy: Vec<Cplx> = wave
            .samples
            .iter()
            .map(|&s| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * 0.25;
                s + Cplx::new(
                    r * (2.0 * std::f64::consts::PI * u2).cos(),
                    r * (2.0 * std::f64::consts::PI * u2).sin(),
                )
            })
            .collect();
        let rx = ZigbeeReceiver::default();
        let frame = rx.receive(&noisy).unwrap();
        assert_eq!(frame.payload, payload);
        assert!(frame.lqi >= 20, "LQI degraded to {}", frame.lqi);
    }

    #[test]
    fn truncated_waveform_is_rejected() {
        let tx = ZigbeeTransmitter::default();
        let wave = tx.transmit(&[1u8; 10]).unwrap();
        let rx = ZigbeeReceiver::default();
        assert!(rx.receive(&wave.samples[..50]).is_err());
    }

    #[test]
    fn oversized_payload_rejected_at_transmit() {
        let tx = ZigbeeTransmitter::default();
        assert!(tx.transmit(&[0u8; 126]).is_err());
    }

    #[test]
    fn higher_sample_rate_round_trip() {
        let payload = vec![0xC3u8; 25];
        let tx = ZigbeeTransmitter::new(16e6);
        let wave = tx.transmit(&payload).unwrap();
        let rx = ZigbeeReceiver::new(16e6);
        assert_eq!(rx.receive(&wave.samples).unwrap().payload, payload);
    }
}
