//! The city-scale smoke run: the `campus` preset at 100 000 closed-loop
//! tags — shared striped helpers, coex load, streaming metrics — through
//! the sharded executor. This is the scale target of the engine core
//! (timing-wheel scheduler, band-indexed medium, SoA link tables); the
//! run holds memory O(entities) and finishes in seconds.
//!
//! Run with an optional seed (default 42) and shard count (default 1):
//!
//! ```text
//! cargo run --release --example campus_smoke [seed] [shards]
//! ```
//!
//! Stdout carries the deterministic report plus an FNV-1a digest of the
//! whole thing, so two same-seed runs are byte-comparable (the CI smoke
//! loop diffs them) — at any shard count, with or without profiling.
//!
//! Set `PROF_OUT=<path>` and/or `PROF_TRACE_OUT=<path>` to run the
//! execution observatory alongside: the first writes the `PROF_net.json`
//! summary (phase totals, per-cell loads, Jain fairness), the second a
//! Chrome/Perfetto trace. Both are side files — stdout stays byte-
//! identical to an unprofiled run, per the `net::prof` contract.

use interscatter::net::prelude::ExecutionSection;
use interscatter::net::scenario::Scenario;
use interscatter::net::trace_digest::fnv1a_str;

/// The city-scale tag count the engine core is sized for.
const N_TAGS: usize = 100_000;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let shards: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let prof_out = std::env::var_os("PROF_OUT");
    let prof_trace_out = std::env::var_os("PROF_TRACE_OUT");
    let profile = prof_out.is_some() || prof_trace_out.is_some();

    // The trace is the one O(events) artifact left — a city-scale run
    // disables it; reproducibility is checked through the report digest.
    let scenario = Scenario::campus(N_TAGS)
        .builder()
        .execution(
            ExecutionSection::new()
                .trace(false)
                .shards(shards)
                .profile(profile),
        )
        .build()
        .expect("campus preset is valid");
    println!(
        "=== campus smoke: {} ===\n{} tags, {} shared helpers, {} APs, {:.0} s simulated, seed {seed}\n",
        scenario.name,
        scenario.tags.len(),
        scenario.carriers.len(),
        scenario.receivers.len(),
        scenario.duration_s,
    );

    let result = interscatter::net::run(&scenario, seed).expect("campus preset runs");

    // The streaming contract: nothing accumulated per event.
    let m = &result.metrics;
    assert!(
        m.latency_ms.is_empty()
            && m.poll_latency_ms.is_empty()
            && m.transaction_latency_ms.is_empty(),
        "streaming mode must not store per-event samples"
    );

    let mut out = String::new();
    out.push_str(&m.report());
    out.push('\n');
    out.push_str(&result.telemetry.render());
    print!("{out}");
    println!(
        "\ncampus digest {:016x} over {} engine events",
        fnv1a_str(&out),
        result.telemetry.events,
    );
    println!("(re-run with the same seed: identical digest)");

    // Observatory output goes to side files and stderr only — never to
    // the digest-checked stdout above.
    if let Some(prof) = &result.prof {
        if let Some(path) = &prof_out {
            let doc = prof.summary().to_json(m.shard_load.as_ref());
            std::fs::write(path, doc).expect("write PROF summary");
            eprintln!("profile summary written to {}", path.to_string_lossy());
        }
        if let Some(path) = &prof_trace_out {
            std::fs::write(path, prof.to_chrome_trace()).expect("write PROF trace");
            eprintln!(
                "chrome trace written to {} (load in ui.perfetto.dev)",
                path.to_string_lossy()
            );
        }
    }
}
