//! The city-scale smoke run: the `campus` preset at 100 000 closed-loop
//! tags — shared striped helpers, coex load, streaming metrics — in one
//! single-threaded simulation. This is the scale target of the engine
//! core (timing-wheel scheduler, band-indexed medium, SoA link tables);
//! the run holds memory O(entities) and finishes in seconds.
//!
//! Run with an optional seed (default 42):
//!
//! ```text
//! cargo run --release --example campus_smoke [seed]
//! ```
//!
//! Stdout carries the deterministic report plus an FNV-1a digest of the
//! whole thing, so two same-seed runs are byte-comparable (the CI smoke
//! loop diffs them).

use interscatter::net::engine::NetworkSim;
use interscatter::net::scenario::Scenario;
use interscatter::net::trace_digest::fnv1a_str;

/// The city-scale tag count the engine core is sized for.
const N_TAGS: usize = 100_000;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let scenario = Scenario::campus(N_TAGS);
    println!(
        "=== campus smoke: {} ===\n{} tags, {} shared helpers, {} APs, {:.0} s simulated, seed {seed}\n",
        scenario.name,
        scenario.tags.len(),
        scenario.carriers.len(),
        scenario.receivers.len(),
        scenario.duration_s,
    );

    // The trace is the one O(events) artifact left — a city-scale run
    // disables it; reproducibility is checked through the report digest.
    let result = NetworkSim::new(&scenario, seed)
        .with_trace(false)
        .run()
        .expect("campus preset is valid");

    // The streaming contract: nothing accumulated per event.
    let m = &result.metrics;
    assert!(
        m.latency_ms.is_empty()
            && m.poll_latency_ms.is_empty()
            && m.transaction_latency_ms.is_empty(),
        "streaming mode must not store per-event samples"
    );

    let mut out = String::new();
    out.push_str(&m.report());
    out.push('\n');
    out.push_str(&result.telemetry.render());
    print!("{out}");
    println!(
        "\ncampus digest {:016x} over {} engine events",
        fnv1a_str(&out),
        result.telemetry.events,
    );
    println!("(re-run with the same seed: identical digest)");
}
