//! The card-to-card application of §5.3 / Fig. 17.
//!
//! Two credit-card form-factor devices exchange data by backscattering the
//! single tone a nearby smartphone's Bluetooth radio produces. This example
//! prints the Fig. 17 BER sweep and then simulates a small "payment token"
//! transfer at a working distance.

use interscatter::sim::applications::CardToCardScenario;
use interscatter::sim::experiments::fig17;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = fig17::run(&fig17::Fig17Params::default())?;
    println!("{}", fig17::report(&rows));

    // Transfer an 18-bit token (as in the paper's prototype) at 10 inches.
    let scenario = CardToCardScenario::fig17(10.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCA2D);
    let token: Vec<u8> = (0..18)
        .map(|i| ((0b10_1100_1011_0100_1101_u32 >> i) & 1) as u8)
        .collect();
    let mut error_free_transfers = 0usize;
    let attempts = 25usize;
    for _ in 0..attempts {
        if scenario.simulate_bits(&token, &mut rng)? == 0 {
            error_free_transfers += 1;
        }
    }
    println!(
        "18-bit token transfers at 10 in with a 10 dBm phone: {error_free_transfers}/{attempts} error-free \
         (received tone {:.1} dBm)",
        scenario.received_power_dbm()
    );
    Ok(())
}
