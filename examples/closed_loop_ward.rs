//! The hospital ward running the **closed-loop poll/ack MAC**: bedside
//! carriers poll their implants with AM-OFDM downlink frames, tags answer
//! with backscattered 802.11b packets, and the ward APs ack — every
//! delivery is a complete poll → backscatter → ack transaction.
//!
//! Run with an optional seed (default 42):
//!
//! ```text
//! cargo run --release --example closed_loop_ward [seed]
//! ```
//!
//! The example sweeps 1, 10 and 100 tags. Re-running with the same seed
//! reproduces identical traces and metrics byte for byte; each sweep point
//! prints a digest of its trace so two runs are easy to compare.

use interscatter::net::engine::NetworkSim;
use interscatter::net::scenario::Scenario;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    for n_tags in [1usize, 10, 100] {
        let scenario = Scenario::hospital_ward(n_tags).closed_loop();
        println!(
            "=== {} ===\n{} tags, {} bedside carriers, {} APs, {:.0} s simulated, seed {seed}",
            scenario.name,
            scenario.tags.len(),
            scenario.carriers.len(),
            scenario.receivers.len(),
            scenario.duration_s,
        );

        let result = NetworkSim::new(&scenario, seed)
            .run()
            .expect("scenario is valid");
        let m = &result.metrics;
        print!("{}", m.report());
        println!(
            "transactions: {} completed / {} polls ({:.1} transactions/s)",
            m.completed_transactions(),
            m.polls(),
            m.transactions_per_sec(),
        );

        let trace_bytes = result.trace.to_bytes();
        println!(
            "event trace: {} records, {} bytes, digest {:016x}\n",
            result.trace.records().len(),
            trace_bytes.len(),
            result.trace.digest(),
        );
    }
    println!("(re-run with the same seed: identical digests; different seed: different digests)");
}
