//! The coexistence shootout: the same congested ward under three spectrum
//! strategies. From `t = 3 s` a hidden Wi-Fi transmitter hammers channel 6
//! at ~60% load — too far to trip the bedside helpers' carrier-sense,
//! close enough to the wall APs to collide with everything the stripe-1
//! tags send there:
//!
//! * **quiet striped** — the same striped ward with an empty coex config:
//!   no external traffic *and* no legacy occupancy scalars, so it is the
//!   like-for-like ceiling the other two rows chase;
//! * **static striping** — carriers keep the sub-band the scenario
//!   assigned them and ride the collapse out;
//! * **adaptive re-striping** — each carrier's EWMA occupancy sensor
//!   crosses the `ReStripe` threshold shortly after the spike begins, and
//!   the stripe-1 carriers re-tune themselves (and their tags) to the
//!   least-occupied sub-band, deterministically and slot-aligned.
//!
//! Run with an optional seed (default 42):
//!
//! ```text
//! cargo run --release --example coex_shootout [seed]
//! ```
//!
//! Each row prints PRR, delivery ratio, external collisions, re-stripe
//! count and a digest of its event trace; re-running with the same seed
//! reproduces every digest byte for byte — external traffic generators,
//! occupancy sensing and re-striping decisions are all deterministic.

use interscatter::net::coex::{CoexConfig, ReStripe};
use interscatter::net::engine::NetworkSim;
use interscatter::net::scenario::Scenario;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let n_tags = 12;
    let rows: [(&str, Scenario); 3] = [
        (
            "quiet striped",
            // An empty config: sensing runs, no sources emit, and the
            // legacy per-sink scalars are out of the fold — the same
            // footing the congested rows stand on, minus the hammer.
            Scenario::hospital_ward(n_tags)
                .with_subband_striping()
                .with_coex(CoexConfig::default()),
        ),
        ("static striping", Scenario::congested_ward(n_tags)),
        (
            "adaptive re-striping",
            Scenario::congested_ward(n_tags).with_restripe(ReStripe::default()),
        ),
    ];

    println!(
        "=== coex shootout: {} ===\n{n_tags} tags striped over 3 APs; hidden Wi-Fi hammers \
         channel 6 at ~60% load from t = 3 s; seed {seed}\n",
        rows[1].1.name,
    );
    println!(
        "{:<22} {:>7} {:>7} {:>9} {:>9} {:>10} {:>9}  digest",
        "strategy", "PRR", "deliv", "ext coll", "defers", "restripes", "peak occ"
    );
    for (label, scenario) in rows {
        let result = NetworkSim::new(&scenario, seed)
            .run()
            .expect("scenario is valid");
        let m = &result.metrics;
        let ext_coll: usize = m.tags.iter().map(|t| t.external_collisions).sum();
        let defers: usize = m.tags.iter().map(|t| t.csma_defers).sum();
        let peak = (0..m.occupancy_series.len())
            .filter_map(|c| m.peak_occupancy(c))
            .fold(0.0f64, f64::max);
        println!(
            "{label:<22} {:>7.3} {:>7.3} {:>9} {:>9} {:>10} {:>9.3}  {:016x}",
            1.0 - m.per(),
            m.delivery_ratio(),
            ext_coll,
            defers,
            m.restripes(),
            peak,
            result.trace.digest(),
        );
        for e in &m.restripe_events {
            println!(
                "  └ t={:.2}s carrier {} re-striped sub-band {} -> {}",
                e.at_s, e.carrier, e.from_subband, e.to_subband
            );
        }
    }
    println!(
        "\nPRR = delivered / attempts over the air. The hidden transmitter never trips the\n\
         helpers' carrier-sense, so static striping keeps colliding at the APs; the adaptive\n\
         policy senses the receive-side load spike and walks its carriers off the channel.\n\
         (re-run with the same seed: identical digests; different seed: different digests)"
    );
}
