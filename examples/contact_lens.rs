//! The smart contact-lens application of §5.1 / Fig. 15.
//!
//! A glucose-sensing contact lens with a 1 cm loop antenna, immersed in
//! contact-lens solution, backscatters Bluetooth transmissions from a watch
//! 12 inches away into Wi-Fi packets received by a phone. This example
//! sweeps the phone distance, prints the Fig. 15-style RSSI table, and then
//! pushes a burst of simulated glucose readings through the waveform-level
//! packet simulation at the nearest distance.

use interscatter::sim::applications::contact_lens_scenario;
use interscatter::sim::experiments::fig15;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Fig. 15 sweep.
    let rows = fig15::run(&fig15::Fig15Params::default())?;
    println!("{}", fig15::report(&rows));

    // Push actual packets through the PHY at 24 inches / 20 dBm.
    let scenario = contact_lens_scenario(20.0, 24.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1E45);
    let mut delivered = 0usize;
    let trials = 20usize;
    for reading in 0..trials {
        // A tiny sensor report: sequence number + synthetic glucose value.
        let glucose_mg_dl = 80 + (reading * 7) % 60;
        let payload = [
            reading as u8,
            glucose_mg_dl as u8,
            0x47, // 'G'
            0x4C, // 'L'
        ];
        let rssi = scenario.rssi_shadowed_dbm(&mut rng);
        let (ok, _, _) = scenario.simulate_wifi_packet(&payload, rssi, &mut rng)?;
        if ok {
            delivered += 1;
        }
    }
    println!(
        "glucose reports delivered at 24 in from the phone: {delivered}/{trials} \
         (RSSI median {:.1} dBm)",
        scenario.rssi_dbm()
    );
    Ok(())
}
