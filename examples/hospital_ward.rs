//! A hospital ward of 60 implanted backscatter sensors contending for
//! bedside BLE carriers and three Wi-Fi APs — the multi-tag network regime
//! the `interscatter-net` engine simulates.
//!
//! Run with an optional seed (default 42):
//!
//! ```text
//! cargo run --release --example hospital_ward [seed]
//! ```
//!
//! Re-running with the same seed reproduces the identical trace and
//! metrics, byte for byte; the example prints a digest of the trace so two
//! runs are easy to compare.

use interscatter::net::engine::NetworkSim;
use interscatter::net::runner::MonteCarlo;
use interscatter::net::scenario::Scenario;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let scenario = Scenario::hospital_ward(60);
    println!(
        "=== {} ===\n{} tags, {} bedside carriers, {} APs, {:.0} s simulated, seed {seed}\n",
        scenario.name,
        scenario.tags.len(),
        scenario.carriers.len(),
        scenario.receivers.len(),
        scenario.duration_s,
    );

    let result = NetworkSim::new(&scenario, seed)
        .run()
        .expect("scenario is valid");
    print!("{}", result.metrics.report());

    let trace_bytes = result.trace.to_bytes();
    println!(
        "\nevent trace: {} records, {} bytes, digest {:016x}",
        result.trace.records().len(),
        trace_bytes.len(),
        result.trace.digest(),
    );
    println!("(re-run with the same seed: identical digest; different seed: different digest)");

    // A small Monte-Carlo sweep over independent seeds shows the spread.
    let mc = MonteCarlo::new(scenario, 8, seed);
    let report = mc.run().expect("trials run");
    println!("\n{}", report.report());
}
