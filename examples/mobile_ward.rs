//! The ambulatory ward: implanted patients **walking** a 12 m × 9 m ward
//! under a random-waypoint model, each wearing their own helper beacon so
//! the illumination hop survives while the tag → AP leg sweeps metres of
//! path loss. Every mobility tick re-derives only the `LinkMatrix` rows
//! the moved entities touch, so link budgets track geometry all run long.
//!
//! Run with an optional seed (default 42):
//!
//! ```text
//! cargo run --release --example mobile_ward [seed]
//! ```
//!
//! The example sweeps 10 and 50 patients through the open-loop ward and
//! runs the 10-patient closed poll/ack loop on the move. Re-running with
//! the same seed reproduces identical traces and metrics byte for byte;
//! each sweep point prints a digest of its trace so two runs are easy to
//! compare.

use interscatter::net::engine::NetworkSim;
use interscatter::net::scenario::Scenario;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let scenarios = [
        Scenario::ambulatory_ward(10),
        Scenario::ambulatory_ward(50),
        Scenario::ambulatory_ward(10).closed_loop(),
    ];
    for scenario in scenarios {
        println!(
            "=== {} ===\n{} walking patients, {} worn helpers, {} APs, {:.0} s simulated, seed {seed}",
            scenario.name,
            scenario.tags.len(),
            scenario.carriers.len(),
            scenario.receivers.len(),
            scenario.duration_s,
        );

        let result = NetworkSim::new(&scenario, seed)
            .run()
            .expect("scenario is valid");
        let m = &result.metrics;
        print!("{}", m.report());
        let half = m.max_displacement_m() / 2.0;
        if let (Some((near, near_n)), Some((far, far_n))) = (
            m.prr_in_displacement_band(0.0, half),
            m.prr_in_displacement_band(half, f64::INFINITY),
        ) {
            println!(
                "PRR vs displacement: {near:.3} over {near_n} attempts below {half:.1} m, \
                 {far:.3} over {far_n} attempts beyond"
            );
        }

        let trace_bytes = result.trace.to_bytes();
        println!(
            "event trace: {} records, {} bytes, digest {:016x}\n",
            result.trace.records().len(),
            trace_bytes.len(),
            result.trace.digest(),
        );
    }
    println!("(re-run with the same seed: identical digests; different seed: different digests)");
}
