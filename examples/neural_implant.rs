//! The implanted neural-recorder application of §5.2 / Fig. 16.
//!
//! A neural recording interface implanted under 1/16 inch of tissue streams
//! electrocorticography samples by backscattering Bluetooth transmissions
//! from a headset into Wi-Fi packets. This example prints the Fig. 16 RSSI
//! sweep, then estimates how many recording channels the interscatter uplink
//! can sustain at the paper's power budget.

use interscatter::backscatter::power::IcPowerModel;
use interscatter::sim::applications::neural_implant_scenario;
use interscatter::sim::experiments::fig16;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = fig16::run(&fig16::Fig16Params::default())?;
    println!("{}", fig16::report(&rows));

    // Waveform-level check at 30 inches with a phone-class 10 dBm source.
    let scenario = neural_implant_scenario(10.0, 30.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xEC06);
    let mut delivered = 0usize;
    let trials = 20usize;
    for frame in 0..trials {
        // 31-byte frame of packed 10-bit ECoG samples.
        let payload: Vec<u8> = (0..31).map(|i| ((i * 13 + frame) % 251) as u8).collect();
        let rssi = scenario.rssi_shadowed_dbm(&mut rng);
        let (ok, _, _) = scenario.simulate_wifi_packet(&payload, rssi, &mut rng)?;
        if ok {
            delivered += 1;
        }
    }
    println!("ECoG frames delivered at 30 in: {delivered}/{trials}");

    // Power arithmetic: recording costs ~2 µW/channel (paper §5.2); the
    // interscatter uplink at 2 Mbps costs ~28 µW and carries the aggregate.
    let model = IcPowerModel::tsmc65nm();
    let recording_w_per_channel = 2e-6;
    let channels = 64;
    let samples_per_s_per_channel = 1000.0;
    let bits_per_sample = 12.0;
    let aggregate_bps = channels as f64 * samples_per_s_per_channel * bits_per_sample;
    let duty = aggregate_bps / 2e6;
    println!(
        "{channels}-channel ECoG at {aggregate_bps:.0} bit/s needs a {:.1}% uplink duty cycle;\n\
         total implant budget ≈ {:.1} µW recording + {:.1} µW communication",
        duty * 100.0,
        channels as f64 * recording_w_per_channel * 1e6,
        model.duty_cycled_w(2e6, 11e6, duty * 20e-3, 20e-3) * 1e6
    );
    Ok(())
}
