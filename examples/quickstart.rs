//! Quickstart: the minimal interscatter pipeline.
//!
//! Crafts the single-tone BLE advertisement, builds the tag's reflection
//! sequence for a Wi-Fi payload, estimates the link budget of the default
//! bench geometry, and prints the IC power the operation costs.
//!
//! Run with `cargo run --example quickstart`.

use interscatter::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Interscatter::default();

    // 1. The BLE side: an advertisement whose payload section is a tone.
    let advert = system.single_tone_advertisement([0xC0, 0xFF, 0xEE, 0x00, 0x00, 0x01])?;
    println!(
        "BLE channel {} advertisement, {}-byte payload crafted for a {:?} tone",
        system.ble_channel.index(),
        advert.adv_data.len(),
        system.tone_polarity
    );
    println!("payload bytes: {:02X?}", advert.adv_data);

    // 2. The tag side: the impedance (reflection) sequence that synthesizes a
    //    2 Mbps 802.11b packet on Wi-Fi channel 11.
    let payload = b"hello from an implanted device";
    let reflection = system.wifi_reflection_sequence(payload)?;
    println!(
        "tag reflection sequence: {} samples at {:.0} MS/s ({} µs of backscatter)",
        reflection.len(),
        system.sample_rate / 1e6,
        reflection.len() as f64 / system.sample_rate * 1e6
    );

    // 3. The link: a 10 dBm phone 1 ft from the tag, a laptop 20 ft away.
    for &(power, d_tag, d_rx) in &[(0.0, 1.0, 10.0), (10.0, 1.0, 20.0), (20.0, 1.0, 60.0)] {
        let rssi = system.uplink_rssi_dbm(power, d_tag, d_rx);
        println!(
            "link budget: {power:>4} dBm BLE, tag at {d_tag} ft, receiver at {d_rx:>4} ft -> RSSI {rssi:.1} dBm ({})",
            if rssi > -92.0 { "decodable" } else { "below Wi-Fi sensitivity" }
        );
    }

    // 4. What it costs the tag.
    println!(
        "interscatter IC active power: {:.1} µW (vs ~300,000 µW for an active Wi-Fi radio)",
        system.ic_power_w() * 1e6
    );
    Ok(())
}
