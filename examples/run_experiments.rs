//! Runs every experiment of the evaluation and prints the tables recorded in
//! EXPERIMENTS.md.
//!
//! Run with `cargo run --release --example run_experiments`.

use interscatter::sim::experiments as exp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Interscatter reproduction: full experiment suite ===\n");

    let fig06 = exp::fig06::run(&exp::fig06::Fig06Params::default())?;
    println!("{}", exp::fig06::report(&fig06));

    let fig09 = exp::fig09::run(0x5EED)?;
    println!("{}", exp::fig09::report(&fig09));

    let fit = exp::packet_fit::run();
    println!("{}", exp::packet_fit::report(&fit));

    let fig10 = exp::fig10::run(&exp::fig10::Fig10Params::default())?;
    println!("{}", exp::fig10::report(&fig10));

    let fig11 = exp::fig11::run(&exp::fig11::Fig11Params::default())?;
    println!("{}", exp::fig11::report(&fig11));

    let fig12 = exp::fig12::run(&exp::fig12::Fig12Params::default())?;
    println!("{}", exp::fig12::report(&fig12));

    let fig13 = exp::fig13::run(&exp::fig13::Fig13Params::default())?;
    println!("{}", exp::fig13::report(&fig13));

    let (fig14_rows, fig14_cdf) = exp::fig14::run(&exp::fig14::Fig14Params::default())?;
    println!("{}", exp::fig14::report(&fig14_rows, &fig14_cdf));

    let fig15 = exp::fig15::run(&exp::fig15::Fig15Params::default())?;
    println!("{}", exp::fig15::report(&fig15));

    let fig16 = exp::fig16::run(&exp::fig16::Fig16Params::default())?;
    println!("{}", exp::fig16::report(&fig16));

    let fig17 = exp::fig17::run(&exp::fig17::Fig17Params::default())?;
    println!("{}", exp::fig17::report(&fig17));

    let (power_rows, power_points) = exp::power::run();
    println!("{}", exp::power::report(&power_rows, &power_points));

    let seeds = exp::scrambler_seed::run(1000);
    println!("{}", exp::scrambler_seed::report(&seeds));

    let square = exp::ablations::square_wave_ablation()?;
    let guards = exp::ablations::guard_interval_ablation(&[0.0, 4e-6, 20e-6, 100e-6, 200e-6]);
    let shifts = exp::ablations::shift_ablation(&[22e6, 35.75e6, 36e6, 60e6]);
    println!("{}", exp::ablations::report(&square, &guards, &shifts));

    println!("=== done ===");
    Ok(())
}
