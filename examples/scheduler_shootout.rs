//! The scheduler shootout: all four carrier-arbitration policies over the
//! **mobile closed-loop ward** — patients walking away from their shared
//! bedside helpers, every delivery a full poll → backscatter → ack
//! transaction, link margins refreshed by the `LinkMatrix` every mobility
//! tick. The same deployment and seed, only the arbitration changes, so
//! the table isolates what the policy buys: the margin-aware scheduler
//! skips mid-fade tags (within its starvation bound) and converts the
//! saved slots into a far higher PRR than the blind round-robin baseline.
//!
//! Run with an optional seed (default 42):
//!
//! ```text
//! cargo run --release --example scheduler_shootout [seed]
//! ```
//!
//! Each policy prints one table row (PRR, delivery ratio, fairness, poll
//! latency, deadline misses) plus a digest of its event trace; re-running
//! with the same seed reproduces every digest byte for byte — all four
//! policies are deterministic, not just the baseline.

use interscatter::net::engine::NetworkSim;
use interscatter::net::scenario::Scenario;
use interscatter::net::sched::SchedPolicy;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let policies = [
        SchedPolicy::RoundRobin,
        SchedPolicy::proportional_fair(),
        SchedPolicy::deadline_aware(),
        SchedPolicy::margin_aware(),
    ];

    // The contested geometry: two patients share each bedside helper and
    // walk while it stays put, so there is genuinely something to
    // arbitrate (cf. `ambulatory_ward`, whose body-worn helpers give
    // every carrier a single tag).
    let base = || Scenario::walking_ward(12).closed_loop();
    println!(
        "=== scheduler shootout: {} ===\n{} walking patients, shared bedside helpers, \
         closed loop, seed {seed}\n",
        base().name,
        base().tags.len(),
    );
    println!(
        "{:<18} {:>6} {:>7} {:>6} {:>9} {:>10} {:>10} {:>7}  digest",
        "policy", "polls", "PRR", "deliv", "fairness", "poll p50", "poll p95", "misses"
    );
    for policy in policies {
        let scenario = base().with_scheduler(policy);
        let result = NetworkSim::new(&scenario, seed)
            .run()
            .expect("scenario is valid");
        let m = &result.metrics;
        println!(
            "{:<18} {:>6} {:>7.3} {:>6.3} {:>9.3} {:>7.2} ms {:>7.2} ms {:>7}  {:016x}",
            policy.slug(),
            m.polls(),
            1.0 - m.per(),
            m.delivery_ratio(),
            m.grant_fairness(),
            m.poll_latency_ms.median().unwrap_or(0.0),
            m.poll_latency_ms.quantile(0.95).unwrap_or(0.0),
            m.deadline_misses(),
            result.trace.digest(),
        );
    }
    println!(
        "\nPRR = delivered / attempts over the air; margin-aware skips mid-fade tags \
         (starvation-bounded), so its attempts succeed more often.\n\
         (re-run with the same seed: identical digests; different seed: different digests)"
    );
}
