//! The shard-determinism smoke: the `campus` preset executed through the
//! sharded executor at 1 shard and again at 4 shards, with full event
//! traces, comparing the FNV-1a trace digests. The shard knob only chunks
//! the scenario's fixed interference-cell list, so the digests must match
//! exactly — the CI smoke loop fails the moment worker count leaks into
//! the physics.
//!
//! Run with an optional seed (default 42):
//!
//! ```text
//! cargo run --release --example shard_smoke [seed]
//! ```

use interscatter::net::prelude::ExecutionSection;
use interscatter::net::scenario::Scenario;
use interscatter::net::shard::partition;

/// Big enough for several interference cells, small enough to keep the
/// full trace in memory.
const N_TAGS: usize = 2_048;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let base = Scenario::campus(N_TAGS);
    let cells = partition(&base).len();
    println!(
        "=== shard smoke: {} ===\n{} tags across {} interference cells, seed {seed}\n",
        base.name,
        base.tags.len(),
        cells,
    );
    assert!(cells > 1, "campus must partition into multiple cells");

    let mut digests = Vec::new();
    for shards in [1usize, 4] {
        let scenario = base
            .clone()
            .builder()
            .execution(ExecutionSection::new().shards(shards))
            .build()
            .expect("campus preset is valid");
        let result = interscatter::net::run(&scenario, seed).expect("sharded campus run");
        let digest = result.trace.digest();
        println!(
            "{shards} shard(s): {} events, trace digest {digest:#018x}",
            result.telemetry.events
        );
        digests.push(digest);
    }

    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "shard count changed the trace digest: {digests:#018x?}"
    );
    println!("\ndigests identical at every shard count — determinism holds");
}
