//! A soak run: the 60-tag hospital ward simulated for **10× its usual
//! duration** with the full observability stack attached — streaming
//! metrics (sketches, not stored samples), live progress lines, and a set
//! of telemetry subscriptions — while holding memory O(subscriptions +
//! entities) instead of O(events).
//!
//! Run with an optional seed (default 42):
//!
//! ```text
//! cargo run --release --example soak_ward [seed]
//! ```
//!
//! Progress lines stream to stderr as the run advances; stdout carries the
//! deterministic report plus an FNV-1a digest of the whole thing, so two
//! same-seed runs are byte-comparable (the CI smoke loop diffs them).
//!
//! Set `PROF_OUT=<path>` and/or `PROF_TRACE_OUT=<path>` to run the
//! execution observatory alongside: a `PROF_net.json` phase summary and a
//! Chrome/Perfetto trace, written as side files — stdout stays
//! byte-identical to an unprofiled run, per the `net::prof` contract.

use interscatter::net::prelude::ExecutionSection;
use interscatter::net::scenario::Scenario;
use interscatter::net::telemetry::{Dataset, Filter, SinkSpec, Subscription};
use interscatter::net::trace_digest::fnv1a_str;

/// Soak length, simulated seconds: 10× the hospital-ward preset's 10 s.
const SOAK_DURATION_S: f64 = 100.0;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let mut scenario = Scenario::hospital_ward(60);
    let base_duration_s = scenario.duration_s;
    scenario.duration_s = SOAK_DURATION_S;
    let scenario = scenario
        .with_streaming_metrics()
        .with_progress(10.0, true)
        .subscribe(Subscription::new(
            "latency",
            Filter::all(),
            SinkSpec::Quantiles(Dataset::DeliveryLatencyMs),
        ))
        .subscribe(Subscription::new(
            "prr-1s",
            Filter::all(),
            SinkSpec::WindowedPrr { window_s: 1.0 },
        ))
        .subscribe(Subscription::new(
            "counters",
            Filter::all(),
            SinkSpec::Counters,
        ));

    println!(
        "=== soak: {} ===\n{} tags, {:.0} s simulated ({:.0}x the base preset), seed {seed}\n",
        scenario.name,
        scenario.tags.len(),
        scenario.duration_s,
        scenario.duration_s / base_duration_s,
    );

    // The trace is the one O(events) artifact left — a soak run disables
    // it; reproducibility is checked through the report digest instead.
    // Profiling rides along when PROF_OUT / PROF_TRACE_OUT ask for it;
    // this single-cell run stays byte-identical to the legacy engine
    // either way.
    let prof_out = std::env::var_os("PROF_OUT");
    let prof_trace_out = std::env::var_os("PROF_TRACE_OUT");
    let profile = prof_out.is_some() || prof_trace_out.is_some();
    let scenario = scenario
        .builder()
        .execution(ExecutionSection::new().trace(false).profile(profile))
        .build()
        .expect("scenario is valid");
    let result = interscatter::net::run(&scenario, seed).expect("scenario runs");

    // The streaming contract: nothing accumulated per event.
    let m = &result.metrics;
    assert!(
        m.latency_ms.is_empty()
            && m.poll_latency_ms.is_empty()
            && m.transaction_latency_ms.is_empty()
            && m.mobility_series.iter().all(Vec::is_empty)
            && m.occupancy_series.iter().all(Vec::is_empty),
        "streaming mode must not store per-event samples"
    );

    let mut out = String::new();
    out.push_str(&m.report());
    out.push('\n');
    out.push_str(&result.telemetry.render());
    print!("{out}");
    println!(
        "\nsoak digest {:016x} over {} engine events",
        fnv1a_str(&out),
        result.telemetry.events,
    );
    println!("(re-run with the same seed: identical digest)");

    // Observatory output goes to side files and stderr only — never to
    // the digest-checked stdout above.
    if let Some(prof) = &result.prof {
        if let Some(path) = &prof_out {
            let doc = prof.summary().to_json(m.shard_load.as_ref());
            std::fs::write(path, doc).expect("write PROF summary");
            eprintln!("profile summary written to {}", path.to_string_lossy());
        }
        if let Some(path) = &prof_trace_out {
            std::fs::write(path, prof.to_chrome_trace()).expect("write PROF trace");
            eprintln!(
                "chrome trace written to {} (load in ui.perfetto.dev)",
                path.to_string_lossy()
            );
        }
    }
}
