//! Single-sideband versus double-sideband backscatter spectra (Fig. 6) and
//! the BLE single-tone spectra (Fig. 9), rendered as ASCII plots.
//!
//! Run with `cargo run --example spectrum_ssb`.

use interscatter::sim::experiments::{fig06, fig09};

/// Renders a PSD as a coarse ASCII spectrum (power vs frequency).
fn ascii_spectrum(
    points: &[interscatter::dsp::spectrum::SpectrumPoint],
    bins: usize,
    width: usize,
) -> String {
    if points.is_empty() || bins == 0 {
        return String::new();
    }
    let f_min = points.first().unwrap().freq_hz;
    let f_max = points.last().unwrap().freq_hz;
    let mut grid = vec![f64::NEG_INFINITY; bins];
    for p in points {
        let idx = (((p.freq_hz - f_min) / (f_max - f_min)) * (bins - 1) as f64).round() as usize;
        let linear = interscatter::dsp::units::db_to_ratio(p.power_db);
        let current = interscatter::dsp::units::db_to_ratio(grid[idx]);
        grid[idx] = interscatter::dsp::units::ratio_to_db(current.max(linear));
        if grid[idx] < p.power_db {
            grid[idx] = p.power_db;
        }
    }
    let peak = grid.iter().cloned().fold(f64::MIN, f64::max);
    let floor = peak - 40.0;
    let mut out = String::new();
    for (i, &db) in grid.iter().enumerate() {
        let freq_mhz = (f_min + (f_max - f_min) * i as f64 / (bins - 1) as f64) / 1e6;
        let norm = ((db - floor) / (peak - floor)).clamp(0.0, 1.0);
        let bar = "#".repeat((norm * width as f64).round() as usize);
        out.push_str(&format!("{freq_mhz:>8.1} MHz |{bar}\n"));
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let results = fig06::run(&fig06::Fig06Params::default())?;
    println!("{}", fig06::report(&results));
    for r in &results {
        println!("--- {} spectrum (40 dB dynamic range) ---", r.design);
        println!("{}", ascii_spectrum(&r.psd, 33, 50));
    }

    let rows = fig09::run(0x5EED)?;
    println!("{}", fig09::report(&rows));
    Ok(())
}
