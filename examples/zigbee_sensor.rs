//! Generating ZigBee instead of Wi-Fi (§4.5 / Fig. 14).
//!
//! The same tag hardware can synthesize IEEE 802.15.4 packets by shifting
//! the BLE channel 38 tone down by 6 MHz into ZigBee channel 14. This
//! example prints the Fig. 14 RSSI summary and then delivers a series of
//! sensor reports to a simulated CC2531-class ZigBee hub.

use interscatter::prelude::*;
use interscatter::sim::experiments::fig14;
use interscatter::sim::uplink::UplinkScenario;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (rows, cdf) = fig14::run(&fig14::Fig14Params::default())?;
    println!("{}", fig14::report(&rows, &cdf));

    // A temperature/humidity sensor 10 ft from the hub, tag 2 ft from the
    // phone providing the Bluetooth carrier.
    let scenario = UplinkScenario::fig14_zigbee(10.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x21CB);
    let mut delivered = 0usize;
    let reports = 15usize;
    for r in 0..reports {
        let temperature_c_x10 = 215 + (r as i32 % 7) - 3;
        let humidity_pct = 40 + (r % 20) as u8;
        let payload = [
            r as u8,
            (temperature_c_x10 & 0xFF) as u8,
            (temperature_c_x10 >> 8) as u8,
            humidity_pct,
        ];
        let rssi = scenario.rssi_shadowed_dbm(&mut rng);
        let (ok, _) = scenario.simulate_zigbee_packet(&payload, rssi, &mut rng)?;
        if ok {
            delivered += 1;
        }
    }
    println!("sensor reports delivered over backscattered ZigBee at 10 ft: {delivered}/{reports}");

    // The energy argument from §4.5: an active ZigBee radio draws tens of
    // milliwatts; the interscatter tag draws tens of microwatts.
    let system = Interscatter::zigbee();
    println!(
        "tag power while transmitting ZigBee: {:.1} µW (active ZigBee radio: ~30,000 µW)",
        system.ic_power_w() * 1e6
    );
    Ok(())
}
