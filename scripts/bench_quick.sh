#!/usr/bin/env bash
# Produce the perf-trajectory artifacts on any checkout with one command:
#
#   scripts/bench_quick.sh [out_dir]
#
# Runs the quick-tier benches (the same loop CI runs) into
# BENCH_net.json — one JSON line per benchmark — and a profiled campus
# smoke run into PROF_net.json + PROF_trace.json (the execution
# observatory's phase/load summary and Chrome/Perfetto trace; see
# `net::prof`). Artifacts land in out_dir (default: the repo root), so
# the trajectory that is otherwise only charted between CI runs can be
# produced locally, e.g. before/after a perf change:
#
#   scripts/bench_quick.sh /tmp/before
#   ... hack ...
#   scripts/bench_quick.sh /tmp/after
#   scripts/bench_trend.sh /tmp/before/BENCH_net.json /tmp/after/BENCH_net.json
#   scripts/prof_summary.sh /tmp/after/PROF_net.json
set -euo pipefail

cd "$(dirname "$0")/.."
out_dir="${1:-.}"
mkdir -p "$out_dir"

bench_out="$out_dir/BENCH_net.json"
prof_out="$out_dir/PROF_net.json"
trace_out="$out_dir/PROF_trace.json"

# The quick tier: every engine bench in --quick mode with --json
# summaries, mirroring the CI loop so local and CI artifacts compare.
: > "$bench_out"
for bench in net_engine net_downlink net_mobility net_sched net_coex net_telemetry net_campus; do
  cargo bench -p interscatter-bench --bench "$bench" -- --quick --json \
    | tee /dev/stderr | grep '^{' >> "$bench_out"
done
jq -s 'length' "$bench_out" >/dev/null # sanity: valid JSON lines

# The observatory run: the campus smoke example at 4 shards with
# profiling on. PROF output goes to side files; stdout stays identical
# to an unprofiled run (the digest-neutrality contract).
PROF_OUT="$prof_out" PROF_TRACE_OUT="$trace_out" \
  cargo run --release --example campus_smoke 42 4 >/dev/null

echo "wrote $bench_out, $prof_out, $trace_out" >&2
