#!/usr/bin/env bash
# Diff two BENCH_net.json artifacts (JSON-lines from the criterion shim's
# --json mode) and print a markdown trend table, flagging regressions.
#
#   usage: scripts/bench_trend.sh BASE.json HEAD.json [threshold_pct]
#
# Output goes to stdout (CI appends it to $GITHUB_STEP_SUMMARY). Exit code
# is always 0: the quick tier runs on shared runners, so the table informs
# rather than gates. Benchmarks present on only one side are listed as
# added/removed.
set -euo pipefail

base="${1:?usage: bench_trend.sh BASE.json HEAD.json [threshold_pct]}"
head="${2:?usage: bench_trend.sh BASE.json HEAD.json [threshold_pct]}"
threshold="${3:-25}"

# Degrade gracefully when the base branch never produced an artifact (first
# run of the workflow, expired retention, renamed artifact): note it and
# succeed, so the trend table never blocks a PR it cannot inform.
if [ ! -s "$base" ]; then
  echo "## Bench trend vs base"
  echo
  echo "No base BENCH_net.json to compare against (missing or empty:" \
    "\`$base\`); skipping the trend table."
  exit 0
fi
if [ ! -s "$head" ]; then
  echo "## Bench trend vs base"
  echo
  echo "No head BENCH_net.json was produced (missing or empty:" \
    "\`$head\`); skipping the trend table."
  exit 0
fi

jq -n -r \
  --slurpfile base "$base" \
  --slurpfile head "$head" \
  --argjson threshold "$threshold" '
  def by_name(rows): rows | map({key: .bench, value: .}) | from_entries;
  (by_name($base)) as $b | (by_name($head)) as $h |
  ($b + $h | keys | sort) as $names |
  ($names | map(
    . as $n |
    if ($b[$n] and $h[$n]) then
      (($h[$n].mean_ns / $b[$n].mean_ns - 1) * 100) as $delta |
      { name: $n, base: $b[$n].mean_ns, head: $h[$n].mean_ns, delta: $delta,
        flag: (if $delta >= $threshold then "🔺 regression"
               elif $delta <= -$threshold then "🟢 improvement"
               else "" end) }
    elif $h[$n] then
      { name: $n, base: null, head: $h[$n].mean_ns, delta: null, flag: "new" }
    else
      { name: $n, base: $b[$n].mean_ns, head: null, delta: null, flag: "removed" }
    end
  )) as $rows |
  def fmt_ns: if . == null then "—"
    elif . >= 1e6 then (. / 1e6 * 100 | round / 100 | tostring) + " ms"
    elif . >= 1e3 then (. / 1e3 * 100 | round / 100 | tostring) + " µs"
    else (. | round | tostring) + " ns" end;
  def fmt_delta: if . == null then "—"
    else (if . >= 0 then "+" else "" end) + (. * 10 | round / 10 | tostring) + "%" end;
  ([$rows[] | select(.flag == "🔺 regression")] | length) as $n_reg |
  "## Bench trend vs base (threshold ±\($threshold)%)",
  "",
  (if $n_reg > 0 then "**\($n_reg) regression(s) above threshold.**"
   else "No regressions above threshold." end),
  "",
  "| benchmark | base mean | head mean | Δ | |",
  "|---|---:|---:|---:|---|",
  ($rows[] | "| \(.name) | \(.base | fmt_ns) | \(.head | fmt_ns) | \(.delta | fmt_delta) | \(.flag) |")
'
