#!/usr/bin/env bash
# Render a PROF_net.json (the execution observatory's summary document,
# written by `PROF_OUT=... cargo run --example campus_smoke` or
# scripts/bench_quick.sh) as a markdown shard-balance report:
#
#   usage: scripts/prof_summary.sh PROF_net.json
#
# Output goes to stdout (CI appends it to $GITHUB_STEP_SUMMARY): the
# setup-vs-run wall-clock split, then the per-cell load table with Jain
# fairness and epoch skew. Exit code is always 0 — wall-clock numbers on
# shared runners inform, they never gate.
set -euo pipefail

prof="${1:?usage: prof_summary.sh PROF_net.json}"

# Degrade gracefully when no profile was produced (profiling off, or the
# producing step failed): note it and succeed.
if [ ! -s "$prof" ]; then
  echo "## Execution observatory"
  echo
  echo "No PROF_net.json to render (missing or empty: \`$prof\`);" \
    "skipping the shard-balance table."
  exit 0
fi

jq -r '
  def fmt_ns: if . == null then "—"
    elif . >= 1e9 then (. / 1e9 * 100 | round / 100 | tostring) + " s"
    elif . >= 1e6 then (. / 1e6 * 100 | round / 100 | tostring) + " ms"
    elif . >= 1e3 then (. / 1e3 * 100 | round / 100 | tostring) + " µs"
    else (. | round | tostring) + " ns" end;
  .phase_totals_ns as $p |
  # Setup: everything before the first event pops — scenario validation,
  # the cell partition, engine-core init (link_build nests inside
  # engine_init, so it is shown but not re-added). Run: the per-epoch
  # event loops plus the exchange and the merges.
  (($p.scenario_build // 0) + ($p.partition // 0) + ($p.engine_init // 0)) as $setup |
  (($p.epoch // 0) + ($p.exchange // 0) + ($p.finalize // 0) + ($p.merge_finalize // 0)) as $run |
  ($setup + $run) as $total |
  def pct: if $total > 0 then (. / $total * 1000 | round / 10 | tostring) + "%" else "—" end;
  "## Execution observatory: \(.scenario)",
  "",
  "Setup \($setup | fmt_ns) (\($setup | pct)) vs run \($run | fmt_ns) (\($run | pct))" +
    " — busy time, summed across cells.",
  "",
  "| phase | total |",
  "|---|---:|",
  ($p | to_entries | sort_by(.key)[] | "| \(.key) | \(.value | fmt_ns) |"),
  "",
  (if .load then
    (.load.cell_events | add) as $ev_total |
    "### Shard balance: \(.load.cells) cells over \(.load.epochs) epochs",
    "",
    "Jain fairness **\(.load.fairness)** over cell event counts; " +
      "epoch skew (peak/mean cell events) max \(.load.epoch_skew_max * 100 | round / 100), " +
      "mean \(.load.epoch_skew_mean * 100 | round / 100); " +
      "critical-path epoch \(.critical_path_epoch // "—").",
    "",
    "| cell | events | share | busy | ghost windows |",
    "|---:|---:|---:|---:|---:|",
    ([.load.cell_events, .load.ghost_windows, (.cells | map(.busy_ns))] | transpose |
      to_entries[] |
      "| \(.key) | \(.value[0]) | " +
      (if $ev_total > 0 then ((.value[0] / $ev_total * 1000 | round / 10 | tostring) + "%")
       else "—" end) +
      " | \(.value[2] | fmt_ns) | \(.value[1]) |")
  else
    "Single-cell run: no shard-load block (the load ledger is a multi-cell quantity)."
  end),
  "",
  (if .dropped_spans > 0 then "⚠ \(.dropped_spans) spans dropped to ring wrap-around." else empty end)
' "$prof"
