//! Root helper library for the Interscatter reproduction workspace.
//!
//! The root package exists to host the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`); the actual functionality
//! lives in the `interscatter*` crates under `crates/`. This library only
//! re-exports the facade crate so examples and tests have a single import
//! path.

#![forbid(unsafe_code)]

pub use interscatter;
pub use interscatter::prelude;
