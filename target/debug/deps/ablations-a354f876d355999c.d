/root/repo/target/debug/deps/ablations-a354f876d355999c.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-a354f876d355999c.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
