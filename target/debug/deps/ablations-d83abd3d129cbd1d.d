/root/repo/target/debug/deps/ablations-d83abd3d129cbd1d.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-d83abd3d129cbd1d.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
