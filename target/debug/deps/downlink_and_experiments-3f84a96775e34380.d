/root/repo/target/debug/deps/downlink_and_experiments-3f84a96775e34380.d: tests/downlink_and_experiments.rs

/root/repo/target/debug/deps/downlink_and_experiments-3f84a96775e34380: tests/downlink_and_experiments.rs

tests/downlink_and_experiments.rs:
