/root/repo/target/debug/deps/downlink_and_experiments-bdef7caf487669dc.d: tests/downlink_and_experiments.rs

/root/repo/target/debug/deps/downlink_and_experiments-bdef7caf487669dc: tests/downlink_and_experiments.rs

tests/downlink_and_experiments.rs:
