/root/repo/target/debug/deps/downlink_and_experiments-c4b6c51bd62d2bcf.d: tests/downlink_and_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libdownlink_and_experiments-c4b6c51bd62d2bcf.rmeta: tests/downlink_and_experiments.rs Cargo.toml

tests/downlink_and_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
