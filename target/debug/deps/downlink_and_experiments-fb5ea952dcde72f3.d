/root/repo/target/debug/deps/downlink_and_experiments-fb5ea952dcde72f3.d: tests/downlink_and_experiments.rs

/root/repo/target/debug/deps/libdownlink_and_experiments-fb5ea952dcde72f3.rmeta: tests/downlink_and_experiments.rs

tests/downlink_and_experiments.rs:
