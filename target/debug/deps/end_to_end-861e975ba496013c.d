/root/repo/target/debug/deps/end_to_end-861e975ba496013c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-861e975ba496013c: tests/end_to_end.rs

tests/end_to_end.rs:
