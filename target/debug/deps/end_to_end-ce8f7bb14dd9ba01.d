/root/repo/target/debug/deps/end_to_end-ce8f7bb14dd9ba01.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ce8f7bb14dd9ba01: tests/end_to_end.rs

tests/end_to_end.rs:
