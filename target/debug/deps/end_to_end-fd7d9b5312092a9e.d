/root/repo/target/debug/deps/end_to_end-fd7d9b5312092a9e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-fd7d9b5312092a9e.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
