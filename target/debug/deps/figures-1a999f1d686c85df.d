/root/repo/target/debug/deps/figures-1a999f1d686c85df.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-1a999f1d686c85df.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
