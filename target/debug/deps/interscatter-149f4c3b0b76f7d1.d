/root/repo/target/debug/deps/interscatter-149f4c3b0b76f7d1.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libinterscatter-149f4c3b0b76f7d1.rlib: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libinterscatter-149f4c3b0b76f7d1.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
