/root/repo/target/debug/deps/interscatter-475747daf443cc8a.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libinterscatter-475747daf443cc8a.rlib: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libinterscatter-475747daf443cc8a.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
