/root/repo/target/debug/deps/interscatter-6d7032259a176ad8.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/interscatter-6d7032259a176ad8: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
