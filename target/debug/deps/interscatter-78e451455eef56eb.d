/root/repo/target/debug/deps/interscatter-78e451455eef56eb.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libinterscatter-78e451455eef56eb.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
