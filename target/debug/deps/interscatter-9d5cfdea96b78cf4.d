/root/repo/target/debug/deps/interscatter-9d5cfdea96b78cf4.d: crates/core/src/lib.rs crates/core/src/prelude.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter-9d5cfdea96b78cf4.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
