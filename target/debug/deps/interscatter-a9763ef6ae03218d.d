/root/repo/target/debug/deps/interscatter-a9763ef6ae03218d.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/interscatter-a9763ef6ae03218d: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
