/root/repo/target/debug/deps/interscatter-d23b796a0083a4fe.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/debug/deps/libinterscatter-d23b796a0083a4fe.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
