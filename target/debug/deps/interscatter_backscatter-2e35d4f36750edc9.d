/root/repo/target/debug/deps/interscatter_backscatter-2e35d4f36750edc9.d: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

/root/repo/target/debug/deps/libinterscatter_backscatter-2e35d4f36750edc9.rlib: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

/root/repo/target/debug/deps/libinterscatter_backscatter-2e35d4f36750edc9.rmeta: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

crates/backscatter/src/lib.rs:
crates/backscatter/src/clocks.rs:
crates/backscatter/src/dsb.rs:
crates/backscatter/src/envelope.rs:
crates/backscatter/src/impedance.rs:
crates/backscatter/src/power.rs:
crates/backscatter/src/ssb.rs:
crates/backscatter/src/tag.rs:
