/root/repo/target/debug/deps/interscatter_backscatter-a86f7210f85395c3.d: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

/root/repo/target/debug/deps/libinterscatter_backscatter-a86f7210f85395c3.rmeta: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

crates/backscatter/src/lib.rs:
crates/backscatter/src/clocks.rs:
crates/backscatter/src/dsb.rs:
crates/backscatter/src/envelope.rs:
crates/backscatter/src/impedance.rs:
crates/backscatter/src/power.rs:
crates/backscatter/src/ssb.rs:
crates/backscatter/src/tag.rs:
