/root/repo/target/debug/deps/interscatter_backscatter-c7f88533d084aee7.d: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

/root/repo/target/debug/deps/interscatter_backscatter-c7f88533d084aee7: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

crates/backscatter/src/lib.rs:
crates/backscatter/src/clocks.rs:
crates/backscatter/src/dsb.rs:
crates/backscatter/src/envelope.rs:
crates/backscatter/src/impedance.rs:
crates/backscatter/src/power.rs:
crates/backscatter/src/ssb.rs:
crates/backscatter/src/tag.rs:
