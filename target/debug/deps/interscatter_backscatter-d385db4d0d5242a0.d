/root/repo/target/debug/deps/interscatter_backscatter-d385db4d0d5242a0.d: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_backscatter-d385db4d0d5242a0.rmeta: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs Cargo.toml

crates/backscatter/src/lib.rs:
crates/backscatter/src/clocks.rs:
crates/backscatter/src/dsb.rs:
crates/backscatter/src/envelope.rs:
crates/backscatter/src/impedance.rs:
crates/backscatter/src/power.rs:
crates/backscatter/src/ssb.rs:
crates/backscatter/src/tag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
