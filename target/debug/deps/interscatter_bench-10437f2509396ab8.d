/root/repo/target/debug/deps/interscatter_bench-10437f2509396ab8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libinterscatter_bench-10437f2509396ab8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
