/root/repo/target/debug/deps/interscatter_bench-192312d5a62f8fbb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/interscatter_bench-192312d5a62f8fbb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
