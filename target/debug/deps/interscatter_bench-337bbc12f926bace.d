/root/repo/target/debug/deps/interscatter_bench-337bbc12f926bace.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/interscatter_bench-337bbc12f926bace: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
