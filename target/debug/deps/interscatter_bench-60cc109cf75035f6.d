/root/repo/target/debug/deps/interscatter_bench-60cc109cf75035f6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_bench-60cc109cf75035f6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
