/root/repo/target/debug/deps/interscatter_bench-c2d197524b8ae170.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libinterscatter_bench-c2d197524b8ae170.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libinterscatter_bench-c2d197524b8ae170.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
