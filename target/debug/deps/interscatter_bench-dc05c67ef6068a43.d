/root/repo/target/debug/deps/interscatter_bench-dc05c67ef6068a43.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libinterscatter_bench-dc05c67ef6068a43.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
