/root/repo/target/debug/deps/interscatter_bench-e4eaa43630dbc483.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_bench-e4eaa43630dbc483.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
