/root/repo/target/debug/deps/interscatter_ble-60e95245f0fe3978.d: crates/ble/src/lib.rs crates/ble/src/channels.rs crates/ble/src/device.rs crates/ble/src/gfsk.rs crates/ble/src/packet.rs crates/ble/src/single_tone.rs crates/ble/src/timing.rs

/root/repo/target/debug/deps/interscatter_ble-60e95245f0fe3978: crates/ble/src/lib.rs crates/ble/src/channels.rs crates/ble/src/device.rs crates/ble/src/gfsk.rs crates/ble/src/packet.rs crates/ble/src/single_tone.rs crates/ble/src/timing.rs

crates/ble/src/lib.rs:
crates/ble/src/channels.rs:
crates/ble/src/device.rs:
crates/ble/src/gfsk.rs:
crates/ble/src/packet.rs:
crates/ble/src/single_tone.rs:
crates/ble/src/timing.rs:
