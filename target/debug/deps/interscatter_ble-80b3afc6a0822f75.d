/root/repo/target/debug/deps/interscatter_ble-80b3afc6a0822f75.d: crates/ble/src/lib.rs crates/ble/src/channels.rs crates/ble/src/device.rs crates/ble/src/gfsk.rs crates/ble/src/packet.rs crates/ble/src/single_tone.rs crates/ble/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_ble-80b3afc6a0822f75.rmeta: crates/ble/src/lib.rs crates/ble/src/channels.rs crates/ble/src/device.rs crates/ble/src/gfsk.rs crates/ble/src/packet.rs crates/ble/src/single_tone.rs crates/ble/src/timing.rs Cargo.toml

crates/ble/src/lib.rs:
crates/ble/src/channels.rs:
crates/ble/src/device.rs:
crates/ble/src/gfsk.rs:
crates/ble/src/packet.rs:
crates/ble/src/single_tone.rs:
crates/ble/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
