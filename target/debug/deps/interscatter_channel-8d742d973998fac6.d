/root/repo/target/debug/deps/interscatter_channel-8d742d973998fac6.d: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/tissue.rs

/root/repo/target/debug/deps/libinterscatter_channel-8d742d973998fac6.rmeta: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/tissue.rs

crates/channel/src/lib.rs:
crates/channel/src/antenna.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
crates/channel/src/tissue.rs:
