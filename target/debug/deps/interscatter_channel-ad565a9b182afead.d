/root/repo/target/debug/deps/interscatter_channel-ad565a9b182afead.d: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/tissue.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_channel-ad565a9b182afead.rmeta: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/tissue.rs Cargo.toml

crates/channel/src/lib.rs:
crates/channel/src/antenna.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
crates/channel/src/tissue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
