/root/repo/target/debug/deps/interscatter_dsp-7562f8c3a550f447.d: crates/dsp/src/lib.rs crates/dsp/src/bits.rs crates/dsp/src/complex.rs crates/dsp/src/constellation.rs crates/dsp/src/correlate.rs crates/dsp/src/crc.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gaussian.rs crates/dsp/src/iq.rs crates/dsp/src/lfsr.rs crates/dsp/src/spectrum.rs crates/dsp/src/units.rs crates/dsp/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_dsp-7562f8c3a550f447.rmeta: crates/dsp/src/lib.rs crates/dsp/src/bits.rs crates/dsp/src/complex.rs crates/dsp/src/constellation.rs crates/dsp/src/correlate.rs crates/dsp/src/crc.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gaussian.rs crates/dsp/src/iq.rs crates/dsp/src/lfsr.rs crates/dsp/src/spectrum.rs crates/dsp/src/units.rs crates/dsp/src/window.rs Cargo.toml

crates/dsp/src/lib.rs:
crates/dsp/src/bits.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/constellation.rs:
crates/dsp/src/correlate.rs:
crates/dsp/src/crc.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/gaussian.rs:
crates/dsp/src/iq.rs:
crates/dsp/src/lfsr.rs:
crates/dsp/src/spectrum.rs:
crates/dsp/src/units.rs:
crates/dsp/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
