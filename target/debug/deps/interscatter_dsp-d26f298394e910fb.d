/root/repo/target/debug/deps/interscatter_dsp-d26f298394e910fb.d: crates/dsp/src/lib.rs crates/dsp/src/bits.rs crates/dsp/src/complex.rs crates/dsp/src/constellation.rs crates/dsp/src/correlate.rs crates/dsp/src/crc.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gaussian.rs crates/dsp/src/iq.rs crates/dsp/src/lfsr.rs crates/dsp/src/spectrum.rs crates/dsp/src/units.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libinterscatter_dsp-d26f298394e910fb.rlib: crates/dsp/src/lib.rs crates/dsp/src/bits.rs crates/dsp/src/complex.rs crates/dsp/src/constellation.rs crates/dsp/src/correlate.rs crates/dsp/src/crc.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gaussian.rs crates/dsp/src/iq.rs crates/dsp/src/lfsr.rs crates/dsp/src/spectrum.rs crates/dsp/src/units.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/libinterscatter_dsp-d26f298394e910fb.rmeta: crates/dsp/src/lib.rs crates/dsp/src/bits.rs crates/dsp/src/complex.rs crates/dsp/src/constellation.rs crates/dsp/src/correlate.rs crates/dsp/src/crc.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gaussian.rs crates/dsp/src/iq.rs crates/dsp/src/lfsr.rs crates/dsp/src/spectrum.rs crates/dsp/src/units.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/bits.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/constellation.rs:
crates/dsp/src/correlate.rs:
crates/dsp/src/crc.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/gaussian.rs:
crates/dsp/src/iq.rs:
crates/dsp/src/lfsr.rs:
crates/dsp/src/spectrum.rs:
crates/dsp/src/units.rs:
crates/dsp/src/window.rs:
