/root/repo/target/debug/deps/interscatter_net-2cf4b875c754d18e.d: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_net-2cf4b875c754d18e.rmeta: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/engine.rs:
crates/net/src/entities.rs:
crates/net/src/event.rs:
crates/net/src/links.rs:
crates/net/src/medium.rs:
crates/net/src/metrics.rs:
crates/net/src/runner.rs:
crates/net/src/scenario.rs:
crates/net/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
