/root/repo/target/debug/deps/interscatter_net-4f6e9ecfd0bd2d82.d: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_net-4f6e9ecfd0bd2d82.rmeta: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/engine.rs:
crates/net/src/entities.rs:
crates/net/src/event.rs:
crates/net/src/links.rs:
crates/net/src/medium.rs:
crates/net/src/metrics.rs:
crates/net/src/runner.rs:
crates/net/src/scenario.rs:
crates/net/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
