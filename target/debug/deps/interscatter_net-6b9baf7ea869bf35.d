/root/repo/target/debug/deps/interscatter_net-6b9baf7ea869bf35.d: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

/root/repo/target/debug/deps/libinterscatter_net-6b9baf7ea869bf35.rmeta: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

crates/net/src/lib.rs:
crates/net/src/engine.rs:
crates/net/src/entities.rs:
crates/net/src/event.rs:
crates/net/src/links.rs:
crates/net/src/medium.rs:
crates/net/src/metrics.rs:
crates/net/src/runner.rs:
crates/net/src/scenario.rs:
crates/net/src/time.rs:
