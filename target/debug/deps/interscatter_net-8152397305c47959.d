/root/repo/target/debug/deps/interscatter_net-8152397305c47959.d: crates/net/src/lib.rs

/root/repo/target/debug/deps/interscatter_net-8152397305c47959: crates/net/src/lib.rs

crates/net/src/lib.rs:
