/root/repo/target/debug/deps/interscatter_net-bf22dd5ebbbd3a0d.d: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

/root/repo/target/debug/deps/interscatter_net-bf22dd5ebbbd3a0d: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

crates/net/src/lib.rs:
crates/net/src/engine.rs:
crates/net/src/entities.rs:
crates/net/src/event.rs:
crates/net/src/links.rs:
crates/net/src/medium.rs:
crates/net/src/metrics.rs:
crates/net/src/runner.rs:
crates/net/src/scenario.rs:
crates/net/src/time.rs:
