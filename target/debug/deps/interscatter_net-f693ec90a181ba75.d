/root/repo/target/debug/deps/interscatter_net-f693ec90a181ba75.d: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

/root/repo/target/debug/deps/libinterscatter_net-f693ec90a181ba75.rlib: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

/root/repo/target/debug/deps/libinterscatter_net-f693ec90a181ba75.rmeta: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

crates/net/src/lib.rs:
crates/net/src/engine.rs:
crates/net/src/entities.rs:
crates/net/src/event.rs:
crates/net/src/links.rs:
crates/net/src/medium.rs:
crates/net/src/metrics.rs:
crates/net/src/runner.rs:
crates/net/src/scenario.rs:
crates/net/src/time.rs:
