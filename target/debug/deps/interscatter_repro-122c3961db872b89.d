/root/repo/target/debug/deps/interscatter_repro-122c3961db872b89.d: src/lib.rs

/root/repo/target/debug/deps/interscatter_repro-122c3961db872b89: src/lib.rs

src/lib.rs:
