/root/repo/target/debug/deps/interscatter_repro-21641c726114275f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_repro-21641c726114275f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
