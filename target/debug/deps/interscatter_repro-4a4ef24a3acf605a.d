/root/repo/target/debug/deps/interscatter_repro-4a4ef24a3acf605a.d: src/lib.rs

/root/repo/target/debug/deps/interscatter_repro-4a4ef24a3acf605a: src/lib.rs

src/lib.rs:
