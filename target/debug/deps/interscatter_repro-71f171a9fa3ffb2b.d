/root/repo/target/debug/deps/interscatter_repro-71f171a9fa3ffb2b.d: src/lib.rs

/root/repo/target/debug/deps/libinterscatter_repro-71f171a9fa3ffb2b.rlib: src/lib.rs

/root/repo/target/debug/deps/libinterscatter_repro-71f171a9fa3ffb2b.rmeta: src/lib.rs

src/lib.rs:
