/root/repo/target/debug/deps/interscatter_repro-a3139573d628fe2e.d: src/lib.rs

/root/repo/target/debug/deps/libinterscatter_repro-a3139573d628fe2e.rmeta: src/lib.rs

src/lib.rs:
