/root/repo/target/debug/deps/interscatter_repro-a344d60a01af9098.d: src/lib.rs

/root/repo/target/debug/deps/libinterscatter_repro-a344d60a01af9098.rmeta: src/lib.rs

src/lib.rs:
