/root/repo/target/debug/deps/interscatter_repro-abfee68b5a4a3f60.d: src/lib.rs

/root/repo/target/debug/deps/libinterscatter_repro-abfee68b5a4a3f60.rlib: src/lib.rs

/root/repo/target/debug/deps/libinterscatter_repro-abfee68b5a4a3f60.rmeta: src/lib.rs

src/lib.rs:
