/root/repo/target/debug/deps/interscatter_repro-eba6a119d390dc3a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_repro-eba6a119d390dc3a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
