/root/repo/target/debug/deps/interscatter_sim-7ca8155b80f22c59.d: crates/sim/src/lib.rs crates/sim/src/applications.rs crates/sim/src/downlink.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/ablations.rs crates/sim/src/experiments/fig06.rs crates/sim/src/experiments/fig09.rs crates/sim/src/experiments/fig10.rs crates/sim/src/experiments/fig11.rs crates/sim/src/experiments/fig12.rs crates/sim/src/experiments/fig13.rs crates/sim/src/experiments/fig14.rs crates/sim/src/experiments/fig15.rs crates/sim/src/experiments/fig16.rs crates/sim/src/experiments/fig17.rs crates/sim/src/experiments/packet_fit.rs crates/sim/src/experiments/power.rs crates/sim/src/experiments/scrambler_seed.rs crates/sim/src/mac.rs crates/sim/src/measurements.rs crates/sim/src/uplink.rs

/root/repo/target/debug/deps/libinterscatter_sim-7ca8155b80f22c59.rlib: crates/sim/src/lib.rs crates/sim/src/applications.rs crates/sim/src/downlink.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/ablations.rs crates/sim/src/experiments/fig06.rs crates/sim/src/experiments/fig09.rs crates/sim/src/experiments/fig10.rs crates/sim/src/experiments/fig11.rs crates/sim/src/experiments/fig12.rs crates/sim/src/experiments/fig13.rs crates/sim/src/experiments/fig14.rs crates/sim/src/experiments/fig15.rs crates/sim/src/experiments/fig16.rs crates/sim/src/experiments/fig17.rs crates/sim/src/experiments/packet_fit.rs crates/sim/src/experiments/power.rs crates/sim/src/experiments/scrambler_seed.rs crates/sim/src/mac.rs crates/sim/src/measurements.rs crates/sim/src/uplink.rs

/root/repo/target/debug/deps/libinterscatter_sim-7ca8155b80f22c59.rmeta: crates/sim/src/lib.rs crates/sim/src/applications.rs crates/sim/src/downlink.rs crates/sim/src/experiments/mod.rs crates/sim/src/experiments/ablations.rs crates/sim/src/experiments/fig06.rs crates/sim/src/experiments/fig09.rs crates/sim/src/experiments/fig10.rs crates/sim/src/experiments/fig11.rs crates/sim/src/experiments/fig12.rs crates/sim/src/experiments/fig13.rs crates/sim/src/experiments/fig14.rs crates/sim/src/experiments/fig15.rs crates/sim/src/experiments/fig16.rs crates/sim/src/experiments/fig17.rs crates/sim/src/experiments/packet_fit.rs crates/sim/src/experiments/power.rs crates/sim/src/experiments/scrambler_seed.rs crates/sim/src/mac.rs crates/sim/src/measurements.rs crates/sim/src/uplink.rs

crates/sim/src/lib.rs:
crates/sim/src/applications.rs:
crates/sim/src/downlink.rs:
crates/sim/src/experiments/mod.rs:
crates/sim/src/experiments/ablations.rs:
crates/sim/src/experiments/fig06.rs:
crates/sim/src/experiments/fig09.rs:
crates/sim/src/experiments/fig10.rs:
crates/sim/src/experiments/fig11.rs:
crates/sim/src/experiments/fig12.rs:
crates/sim/src/experiments/fig13.rs:
crates/sim/src/experiments/fig14.rs:
crates/sim/src/experiments/fig15.rs:
crates/sim/src/experiments/fig16.rs:
crates/sim/src/experiments/fig17.rs:
crates/sim/src/experiments/packet_fit.rs:
crates/sim/src/experiments/power.rs:
crates/sim/src/experiments/scrambler_seed.rs:
crates/sim/src/mac.rs:
crates/sim/src/measurements.rs:
crates/sim/src/uplink.rs:
