/root/repo/target/debug/deps/interscatter_wifi-1d7839054f3b1e35.d: crates/wifi/src/lib.rs crates/wifi/src/dot11b/mod.rs crates/wifi/src/dot11b/barker.rs crates/wifi/src/dot11b/cck.rs crates/wifi/src/dot11b/dpsk.rs crates/wifi/src/dot11b/plcp.rs crates/wifi/src/dot11b/rates.rs crates/wifi/src/dot11b/rx.rs crates/wifi/src/dot11b/scrambler.rs crates/wifi/src/dot11b/tx.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm/mod.rs crates/wifi/src/ofdm/am.rs crates/wifi/src/ofdm/convolutional.rs crates/wifi/src/ofdm/interleaver.rs crates/wifi/src/ofdm/ppdu.rs crates/wifi/src/ofdm/scrambler.rs crates/wifi/src/ofdm/symbol.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_wifi-1d7839054f3b1e35.rmeta: crates/wifi/src/lib.rs crates/wifi/src/dot11b/mod.rs crates/wifi/src/dot11b/barker.rs crates/wifi/src/dot11b/cck.rs crates/wifi/src/dot11b/dpsk.rs crates/wifi/src/dot11b/plcp.rs crates/wifi/src/dot11b/rates.rs crates/wifi/src/dot11b/rx.rs crates/wifi/src/dot11b/scrambler.rs crates/wifi/src/dot11b/tx.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm/mod.rs crates/wifi/src/ofdm/am.rs crates/wifi/src/ofdm/convolutional.rs crates/wifi/src/ofdm/interleaver.rs crates/wifi/src/ofdm/ppdu.rs crates/wifi/src/ofdm/scrambler.rs crates/wifi/src/ofdm/symbol.rs Cargo.toml

crates/wifi/src/lib.rs:
crates/wifi/src/dot11b/mod.rs:
crates/wifi/src/dot11b/barker.rs:
crates/wifi/src/dot11b/cck.rs:
crates/wifi/src/dot11b/dpsk.rs:
crates/wifi/src/dot11b/plcp.rs:
crates/wifi/src/dot11b/rates.rs:
crates/wifi/src/dot11b/rx.rs:
crates/wifi/src/dot11b/scrambler.rs:
crates/wifi/src/dot11b/tx.rs:
crates/wifi/src/mac.rs:
crates/wifi/src/ofdm/mod.rs:
crates/wifi/src/ofdm/am.rs:
crates/wifi/src/ofdm/convolutional.rs:
crates/wifi/src/ofdm/interleaver.rs:
crates/wifi/src/ofdm/ppdu.rs:
crates/wifi/src/ofdm/scrambler.rs:
crates/wifi/src/ofdm/symbol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
