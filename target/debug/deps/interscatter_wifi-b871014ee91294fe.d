/root/repo/target/debug/deps/interscatter_wifi-b871014ee91294fe.d: crates/wifi/src/lib.rs crates/wifi/src/dot11b/mod.rs crates/wifi/src/dot11b/barker.rs crates/wifi/src/dot11b/cck.rs crates/wifi/src/dot11b/dpsk.rs crates/wifi/src/dot11b/plcp.rs crates/wifi/src/dot11b/rates.rs crates/wifi/src/dot11b/rx.rs crates/wifi/src/dot11b/scrambler.rs crates/wifi/src/dot11b/tx.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm/mod.rs crates/wifi/src/ofdm/am.rs crates/wifi/src/ofdm/convolutional.rs crates/wifi/src/ofdm/interleaver.rs crates/wifi/src/ofdm/ppdu.rs crates/wifi/src/ofdm/scrambler.rs crates/wifi/src/ofdm/symbol.rs

/root/repo/target/debug/deps/libinterscatter_wifi-b871014ee91294fe.rlib: crates/wifi/src/lib.rs crates/wifi/src/dot11b/mod.rs crates/wifi/src/dot11b/barker.rs crates/wifi/src/dot11b/cck.rs crates/wifi/src/dot11b/dpsk.rs crates/wifi/src/dot11b/plcp.rs crates/wifi/src/dot11b/rates.rs crates/wifi/src/dot11b/rx.rs crates/wifi/src/dot11b/scrambler.rs crates/wifi/src/dot11b/tx.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm/mod.rs crates/wifi/src/ofdm/am.rs crates/wifi/src/ofdm/convolutional.rs crates/wifi/src/ofdm/interleaver.rs crates/wifi/src/ofdm/ppdu.rs crates/wifi/src/ofdm/scrambler.rs crates/wifi/src/ofdm/symbol.rs

/root/repo/target/debug/deps/libinterscatter_wifi-b871014ee91294fe.rmeta: crates/wifi/src/lib.rs crates/wifi/src/dot11b/mod.rs crates/wifi/src/dot11b/barker.rs crates/wifi/src/dot11b/cck.rs crates/wifi/src/dot11b/dpsk.rs crates/wifi/src/dot11b/plcp.rs crates/wifi/src/dot11b/rates.rs crates/wifi/src/dot11b/rx.rs crates/wifi/src/dot11b/scrambler.rs crates/wifi/src/dot11b/tx.rs crates/wifi/src/mac.rs crates/wifi/src/ofdm/mod.rs crates/wifi/src/ofdm/am.rs crates/wifi/src/ofdm/convolutional.rs crates/wifi/src/ofdm/interleaver.rs crates/wifi/src/ofdm/ppdu.rs crates/wifi/src/ofdm/scrambler.rs crates/wifi/src/ofdm/symbol.rs

crates/wifi/src/lib.rs:
crates/wifi/src/dot11b/mod.rs:
crates/wifi/src/dot11b/barker.rs:
crates/wifi/src/dot11b/cck.rs:
crates/wifi/src/dot11b/dpsk.rs:
crates/wifi/src/dot11b/plcp.rs:
crates/wifi/src/dot11b/rates.rs:
crates/wifi/src/dot11b/rx.rs:
crates/wifi/src/dot11b/scrambler.rs:
crates/wifi/src/dot11b/tx.rs:
crates/wifi/src/mac.rs:
crates/wifi/src/ofdm/mod.rs:
crates/wifi/src/ofdm/am.rs:
crates/wifi/src/ofdm/convolutional.rs:
crates/wifi/src/ofdm/interleaver.rs:
crates/wifi/src/ofdm/ppdu.rs:
crates/wifi/src/ofdm/scrambler.rs:
crates/wifi/src/ofdm/symbol.rs:
