/root/repo/target/debug/deps/interscatter_zigbee-589d5e2856250e1c.d: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_zigbee-589d5e2856250e1c.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs Cargo.toml

crates/zigbee/src/lib.rs:
crates/zigbee/src/chips.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/oqpsk.rs:
crates/zigbee/src/phy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
