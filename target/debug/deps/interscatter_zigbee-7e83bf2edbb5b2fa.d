/root/repo/target/debug/deps/interscatter_zigbee-7e83bf2edbb5b2fa.d: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

/root/repo/target/debug/deps/interscatter_zigbee-7e83bf2edbb5b2fa: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

crates/zigbee/src/lib.rs:
crates/zigbee/src/chips.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/oqpsk.rs:
crates/zigbee/src/phy.rs:
