/root/repo/target/debug/deps/interscatter_zigbee-996b8d417b80d0c2.d: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

/root/repo/target/debug/deps/libinterscatter_zigbee-996b8d417b80d0c2.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

crates/zigbee/src/lib.rs:
crates/zigbee/src/chips.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/oqpsk.rs:
crates/zigbee/src/phy.rs:
