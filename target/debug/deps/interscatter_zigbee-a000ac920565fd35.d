/root/repo/target/debug/deps/interscatter_zigbee-a000ac920565fd35.d: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs Cargo.toml

/root/repo/target/debug/deps/libinterscatter_zigbee-a000ac920565fd35.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs Cargo.toml

crates/zigbee/src/lib.rs:
crates/zigbee/src/chips.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/oqpsk.rs:
crates/zigbee/src/phy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
