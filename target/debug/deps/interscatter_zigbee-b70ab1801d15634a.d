/root/repo/target/debug/deps/interscatter_zigbee-b70ab1801d15634a.d: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

/root/repo/target/debug/deps/libinterscatter_zigbee-b70ab1801d15634a.rlib: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

/root/repo/target/debug/deps/libinterscatter_zigbee-b70ab1801d15634a.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

crates/zigbee/src/lib.rs:
crates/zigbee/src/chips.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/oqpsk.rs:
crates/zigbee/src/phy.rs:
