/root/repo/target/debug/deps/interscatter_zigbee-e7712e16e9b3067c.d: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

/root/repo/target/debug/deps/libinterscatter_zigbee-e7712e16e9b3067c.rlib: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

/root/repo/target/debug/deps/libinterscatter_zigbee-e7712e16e9b3067c.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

crates/zigbee/src/lib.rs:
crates/zigbee/src/chips.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/oqpsk.rs:
crates/zigbee/src/phy.rs:
