/root/repo/target/debug/deps/interscatter_zigbee-fde956583e48f020.d: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

/root/repo/target/debug/deps/libinterscatter_zigbee-fde956583e48f020.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

crates/zigbee/src/lib.rs:
crates/zigbee/src/chips.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/oqpsk.rs:
crates/zigbee/src/phy.rs:
