/root/repo/target/debug/deps/net_determinism-14762a545bf22a98.d: tests/net_determinism.rs

/root/repo/target/debug/deps/net_determinism-14762a545bf22a98: tests/net_determinism.rs

tests/net_determinism.rs:
