/root/repo/target/debug/deps/net_determinism-a6e6ba9421106338.d: tests/net_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libnet_determinism-a6e6ba9421106338.rmeta: tests/net_determinism.rs Cargo.toml

tests/net_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
