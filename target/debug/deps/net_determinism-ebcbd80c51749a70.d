/root/repo/target/debug/deps/net_determinism-ebcbd80c51749a70.d: tests/net_determinism.rs

/root/repo/target/debug/deps/libnet_determinism-ebcbd80c51749a70.rmeta: tests/net_determinism.rs

tests/net_determinism.rs:
