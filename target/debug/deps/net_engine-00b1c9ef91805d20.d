/root/repo/target/debug/deps/net_engine-00b1c9ef91805d20.d: crates/bench/benches/net_engine.rs

/root/repo/target/debug/deps/libnet_engine-00b1c9ef91805d20.rmeta: crates/bench/benches/net_engine.rs

crates/bench/benches/net_engine.rs:
