/root/repo/target/debug/deps/net_engine-7822fb297e08d07d.d: crates/bench/benches/net_engine.rs Cargo.toml

/root/repo/target/debug/deps/libnet_engine-7822fb297e08d07d.rmeta: crates/bench/benches/net_engine.rs Cargo.toml

crates/bench/benches/net_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
