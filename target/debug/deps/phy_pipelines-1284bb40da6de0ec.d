/root/repo/target/debug/deps/phy_pipelines-1284bb40da6de0ec.d: crates/bench/benches/phy_pipelines.rs

/root/repo/target/debug/deps/libphy_pipelines-1284bb40da6de0ec.rmeta: crates/bench/benches/phy_pipelines.rs

crates/bench/benches/phy_pipelines.rs:
