/root/repo/target/debug/deps/phy_pipelines-fc7d57ae49b8465d.d: crates/bench/benches/phy_pipelines.rs Cargo.toml

/root/repo/target/debug/deps/libphy_pipelines-fc7d57ae49b8465d.rmeta: crates/bench/benches/phy_pipelines.rs Cargo.toml

crates/bench/benches/phy_pipelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
