/root/repo/target/debug/deps/probe-4e83fc99a7b02269.d: crates/net/tests/probe.rs

/root/repo/target/debug/deps/probe-4e83fc99a7b02269: crates/net/tests/probe.rs

crates/net/tests/probe.rs:
