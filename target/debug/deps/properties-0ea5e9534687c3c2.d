/root/repo/target/debug/deps/properties-0ea5e9534687c3c2.d: tests/properties.rs

/root/repo/target/debug/deps/properties-0ea5e9534687c3c2: tests/properties.rs

tests/properties.rs:
