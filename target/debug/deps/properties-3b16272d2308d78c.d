/root/repo/target/debug/deps/properties-3b16272d2308d78c.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-3b16272d2308d78c.rmeta: tests/properties.rs

tests/properties.rs:
