/root/repo/target/debug/deps/properties-66ebcb016b40fc14.d: tests/properties.rs

/root/repo/target/debug/deps/properties-66ebcb016b40fc14: tests/properties.rs

tests/properties.rs:
