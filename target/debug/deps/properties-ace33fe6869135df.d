/root/repo/target/debug/deps/properties-ace33fe6869135df.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ace33fe6869135df.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
