/root/repo/target/debug/deps/rayon-4080fceed046490c.d: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-4080fceed046490c.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
