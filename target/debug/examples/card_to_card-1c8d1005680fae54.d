/root/repo/target/debug/examples/card_to_card-1c8d1005680fae54.d: examples/card_to_card.rs

/root/repo/target/debug/examples/card_to_card-1c8d1005680fae54: examples/card_to_card.rs

examples/card_to_card.rs:
