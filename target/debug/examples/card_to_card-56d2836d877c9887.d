/root/repo/target/debug/examples/card_to_card-56d2836d877c9887.d: examples/card_to_card.rs

/root/repo/target/debug/examples/libcard_to_card-56d2836d877c9887.rmeta: examples/card_to_card.rs

examples/card_to_card.rs:
