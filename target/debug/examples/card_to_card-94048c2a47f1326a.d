/root/repo/target/debug/examples/card_to_card-94048c2a47f1326a.d: examples/card_to_card.rs

/root/repo/target/debug/examples/card_to_card-94048c2a47f1326a: examples/card_to_card.rs

examples/card_to_card.rs:
