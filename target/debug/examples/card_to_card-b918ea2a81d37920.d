/root/repo/target/debug/examples/card_to_card-b918ea2a81d37920.d: examples/card_to_card.rs Cargo.toml

/root/repo/target/debug/examples/libcard_to_card-b918ea2a81d37920.rmeta: examples/card_to_card.rs Cargo.toml

examples/card_to_card.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
