/root/repo/target/debug/examples/contact_lens-0d9cbaca85c3b9ac.d: examples/contact_lens.rs

/root/repo/target/debug/examples/libcontact_lens-0d9cbaca85c3b9ac.rmeta: examples/contact_lens.rs

examples/contact_lens.rs:
