/root/repo/target/debug/examples/contact_lens-29d636d5291cdf4b.d: examples/contact_lens.rs

/root/repo/target/debug/examples/contact_lens-29d636d5291cdf4b: examples/contact_lens.rs

examples/contact_lens.rs:
