/root/repo/target/debug/examples/contact_lens-489c844049cbc4ea.d: examples/contact_lens.rs

/root/repo/target/debug/examples/contact_lens-489c844049cbc4ea: examples/contact_lens.rs

examples/contact_lens.rs:
