/root/repo/target/debug/examples/contact_lens-fe1ca44f579e02d9.d: examples/contact_lens.rs Cargo.toml

/root/repo/target/debug/examples/libcontact_lens-fe1ca44f579e02d9.rmeta: examples/contact_lens.rs Cargo.toml

examples/contact_lens.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
