/root/repo/target/debug/examples/hospital_ward-613f03b1df07d0a3.d: examples/hospital_ward.rs

/root/repo/target/debug/examples/libhospital_ward-613f03b1df07d0a3.rmeta: examples/hospital_ward.rs

examples/hospital_ward.rs:
