/root/repo/target/debug/examples/hospital_ward-68e1f465c6344dc7.d: examples/hospital_ward.rs

/root/repo/target/debug/examples/hospital_ward-68e1f465c6344dc7: examples/hospital_ward.rs

examples/hospital_ward.rs:
