/root/repo/target/debug/examples/hospital_ward-b3578e9dbbd7feca.d: examples/hospital_ward.rs Cargo.toml

/root/repo/target/debug/examples/libhospital_ward-b3578e9dbbd7feca.rmeta: examples/hospital_ward.rs Cargo.toml

examples/hospital_ward.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
