/root/repo/target/debug/examples/neural_implant-6e02fbe9c076b2f1.d: examples/neural_implant.rs Cargo.toml

/root/repo/target/debug/examples/libneural_implant-6e02fbe9c076b2f1.rmeta: examples/neural_implant.rs Cargo.toml

examples/neural_implant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
