/root/repo/target/debug/examples/neural_implant-757903e698374622.d: examples/neural_implant.rs

/root/repo/target/debug/examples/neural_implant-757903e698374622: examples/neural_implant.rs

examples/neural_implant.rs:
