/root/repo/target/debug/examples/neural_implant-842c5c219e3977b4.d: examples/neural_implant.rs

/root/repo/target/debug/examples/neural_implant-842c5c219e3977b4: examples/neural_implant.rs

examples/neural_implant.rs:
