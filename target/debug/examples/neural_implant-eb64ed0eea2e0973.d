/root/repo/target/debug/examples/neural_implant-eb64ed0eea2e0973.d: examples/neural_implant.rs

/root/repo/target/debug/examples/libneural_implant-eb64ed0eea2e0973.rmeta: examples/neural_implant.rs

examples/neural_implant.rs:
