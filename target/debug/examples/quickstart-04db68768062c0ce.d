/root/repo/target/debug/examples/quickstart-04db68768062c0ce.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-04db68768062c0ce.rmeta: examples/quickstart.rs

examples/quickstart.rs:
