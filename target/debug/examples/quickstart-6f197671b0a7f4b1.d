/root/repo/target/debug/examples/quickstart-6f197671b0a7f4b1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6f197671b0a7f4b1: examples/quickstart.rs

examples/quickstart.rs:
