/root/repo/target/debug/examples/quickstart-da9eac0323568ea6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-da9eac0323568ea6: examples/quickstart.rs

examples/quickstart.rs:
