/root/repo/target/debug/examples/run_experiments-732c42ae2b9db6cd.d: examples/run_experiments.rs

/root/repo/target/debug/examples/run_experiments-732c42ae2b9db6cd: examples/run_experiments.rs

examples/run_experiments.rs:
