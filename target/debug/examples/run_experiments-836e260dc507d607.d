/root/repo/target/debug/examples/run_experiments-836e260dc507d607.d: examples/run_experiments.rs

/root/repo/target/debug/examples/librun_experiments-836e260dc507d607.rmeta: examples/run_experiments.rs

examples/run_experiments.rs:
