/root/repo/target/debug/examples/run_experiments-9af11fa844d341fe.d: examples/run_experiments.rs

/root/repo/target/debug/examples/run_experiments-9af11fa844d341fe: examples/run_experiments.rs

examples/run_experiments.rs:
