/root/repo/target/debug/examples/run_experiments-e7bb3e8030ba6fa1.d: examples/run_experiments.rs Cargo.toml

/root/repo/target/debug/examples/librun_experiments-e7bb3e8030ba6fa1.rmeta: examples/run_experiments.rs Cargo.toml

examples/run_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
