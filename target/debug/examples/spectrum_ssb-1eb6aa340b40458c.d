/root/repo/target/debug/examples/spectrum_ssb-1eb6aa340b40458c.d: examples/spectrum_ssb.rs

/root/repo/target/debug/examples/spectrum_ssb-1eb6aa340b40458c: examples/spectrum_ssb.rs

examples/spectrum_ssb.rs:
