/root/repo/target/debug/examples/spectrum_ssb-37ae90a151be4ef0.d: examples/spectrum_ssb.rs

/root/repo/target/debug/examples/spectrum_ssb-37ae90a151be4ef0: examples/spectrum_ssb.rs

examples/spectrum_ssb.rs:
