/root/repo/target/debug/examples/spectrum_ssb-6601f72c295b748f.d: examples/spectrum_ssb.rs

/root/repo/target/debug/examples/libspectrum_ssb-6601f72c295b748f.rmeta: examples/spectrum_ssb.rs

examples/spectrum_ssb.rs:
