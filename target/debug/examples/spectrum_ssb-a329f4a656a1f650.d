/root/repo/target/debug/examples/spectrum_ssb-a329f4a656a1f650.d: examples/spectrum_ssb.rs Cargo.toml

/root/repo/target/debug/examples/libspectrum_ssb-a329f4a656a1f650.rmeta: examples/spectrum_ssb.rs Cargo.toml

examples/spectrum_ssb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
