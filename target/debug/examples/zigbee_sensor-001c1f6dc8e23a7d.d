/root/repo/target/debug/examples/zigbee_sensor-001c1f6dc8e23a7d.d: examples/zigbee_sensor.rs Cargo.toml

/root/repo/target/debug/examples/libzigbee_sensor-001c1f6dc8e23a7d.rmeta: examples/zigbee_sensor.rs Cargo.toml

examples/zigbee_sensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
