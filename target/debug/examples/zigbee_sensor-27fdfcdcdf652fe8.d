/root/repo/target/debug/examples/zigbee_sensor-27fdfcdcdf652fe8.d: examples/zigbee_sensor.rs

/root/repo/target/debug/examples/libzigbee_sensor-27fdfcdcdf652fe8.rmeta: examples/zigbee_sensor.rs

examples/zigbee_sensor.rs:
