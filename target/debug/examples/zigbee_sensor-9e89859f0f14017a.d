/root/repo/target/debug/examples/zigbee_sensor-9e89859f0f14017a.d: examples/zigbee_sensor.rs

/root/repo/target/debug/examples/zigbee_sensor-9e89859f0f14017a: examples/zigbee_sensor.rs

examples/zigbee_sensor.rs:
