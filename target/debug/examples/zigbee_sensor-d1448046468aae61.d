/root/repo/target/debug/examples/zigbee_sensor-d1448046468aae61.d: examples/zigbee_sensor.rs

/root/repo/target/debug/examples/zigbee_sensor-d1448046468aae61: examples/zigbee_sensor.rs

examples/zigbee_sensor.rs:
