/root/repo/target/debug/libinterscatter_bench.rlib: /root/repo/crates/bench/src/lib.rs
