/root/repo/target/debug/librayon.rlib: /root/repo/crates/shims/rayon/src/lib.rs
