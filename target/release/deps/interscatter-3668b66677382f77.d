/root/repo/target/release/deps/interscatter-3668b66677382f77.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/release/deps/libinterscatter-3668b66677382f77.rlib: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/release/deps/libinterscatter-3668b66677382f77.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
