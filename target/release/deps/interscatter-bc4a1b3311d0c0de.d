/root/repo/target/release/deps/interscatter-bc4a1b3311d0c0de.d: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/release/deps/libinterscatter-bc4a1b3311d0c0de.rlib: crates/core/src/lib.rs crates/core/src/prelude.rs

/root/repo/target/release/deps/libinterscatter-bc4a1b3311d0c0de.rmeta: crates/core/src/lib.rs crates/core/src/prelude.rs

crates/core/src/lib.rs:
crates/core/src/prelude.rs:
