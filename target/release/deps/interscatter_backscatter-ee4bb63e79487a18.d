/root/repo/target/release/deps/interscatter_backscatter-ee4bb63e79487a18.d: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

/root/repo/target/release/deps/libinterscatter_backscatter-ee4bb63e79487a18.rlib: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

/root/repo/target/release/deps/libinterscatter_backscatter-ee4bb63e79487a18.rmeta: crates/backscatter/src/lib.rs crates/backscatter/src/clocks.rs crates/backscatter/src/dsb.rs crates/backscatter/src/envelope.rs crates/backscatter/src/impedance.rs crates/backscatter/src/power.rs crates/backscatter/src/ssb.rs crates/backscatter/src/tag.rs

crates/backscatter/src/lib.rs:
crates/backscatter/src/clocks.rs:
crates/backscatter/src/dsb.rs:
crates/backscatter/src/envelope.rs:
crates/backscatter/src/impedance.rs:
crates/backscatter/src/power.rs:
crates/backscatter/src/ssb.rs:
crates/backscatter/src/tag.rs:
