/root/repo/target/release/deps/interscatter_bench-71cedb9a5d0e874f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libinterscatter_bench-71cedb9a5d0e874f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libinterscatter_bench-71cedb9a5d0e874f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
