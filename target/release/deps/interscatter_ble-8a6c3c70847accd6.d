/root/repo/target/release/deps/interscatter_ble-8a6c3c70847accd6.d: crates/ble/src/lib.rs crates/ble/src/channels.rs crates/ble/src/device.rs crates/ble/src/gfsk.rs crates/ble/src/packet.rs crates/ble/src/single_tone.rs crates/ble/src/timing.rs

/root/repo/target/release/deps/libinterscatter_ble-8a6c3c70847accd6.rlib: crates/ble/src/lib.rs crates/ble/src/channels.rs crates/ble/src/device.rs crates/ble/src/gfsk.rs crates/ble/src/packet.rs crates/ble/src/single_tone.rs crates/ble/src/timing.rs

/root/repo/target/release/deps/libinterscatter_ble-8a6c3c70847accd6.rmeta: crates/ble/src/lib.rs crates/ble/src/channels.rs crates/ble/src/device.rs crates/ble/src/gfsk.rs crates/ble/src/packet.rs crates/ble/src/single_tone.rs crates/ble/src/timing.rs

crates/ble/src/lib.rs:
crates/ble/src/channels.rs:
crates/ble/src/device.rs:
crates/ble/src/gfsk.rs:
crates/ble/src/packet.rs:
crates/ble/src/single_tone.rs:
crates/ble/src/timing.rs:
