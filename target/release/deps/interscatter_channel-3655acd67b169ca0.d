/root/repo/target/release/deps/interscatter_channel-3655acd67b169ca0.d: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/tissue.rs

/root/repo/target/release/deps/libinterscatter_channel-3655acd67b169ca0.rlib: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/tissue.rs

/root/repo/target/release/deps/libinterscatter_channel-3655acd67b169ca0.rmeta: crates/channel/src/lib.rs crates/channel/src/antenna.rs crates/channel/src/link.rs crates/channel/src/noise.rs crates/channel/src/pathloss.rs crates/channel/src/tissue.rs

crates/channel/src/lib.rs:
crates/channel/src/antenna.rs:
crates/channel/src/link.rs:
crates/channel/src/noise.rs:
crates/channel/src/pathloss.rs:
crates/channel/src/tissue.rs:
