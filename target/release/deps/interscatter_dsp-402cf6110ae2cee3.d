/root/repo/target/release/deps/interscatter_dsp-402cf6110ae2cee3.d: crates/dsp/src/lib.rs crates/dsp/src/bits.rs crates/dsp/src/complex.rs crates/dsp/src/constellation.rs crates/dsp/src/correlate.rs crates/dsp/src/crc.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gaussian.rs crates/dsp/src/iq.rs crates/dsp/src/lfsr.rs crates/dsp/src/spectrum.rs crates/dsp/src/units.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libinterscatter_dsp-402cf6110ae2cee3.rlib: crates/dsp/src/lib.rs crates/dsp/src/bits.rs crates/dsp/src/complex.rs crates/dsp/src/constellation.rs crates/dsp/src/correlate.rs crates/dsp/src/crc.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gaussian.rs crates/dsp/src/iq.rs crates/dsp/src/lfsr.rs crates/dsp/src/spectrum.rs crates/dsp/src/units.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libinterscatter_dsp-402cf6110ae2cee3.rmeta: crates/dsp/src/lib.rs crates/dsp/src/bits.rs crates/dsp/src/complex.rs crates/dsp/src/constellation.rs crates/dsp/src/correlate.rs crates/dsp/src/crc.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/gaussian.rs crates/dsp/src/iq.rs crates/dsp/src/lfsr.rs crates/dsp/src/spectrum.rs crates/dsp/src/units.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/bits.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/constellation.rs:
crates/dsp/src/correlate.rs:
crates/dsp/src/crc.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/gaussian.rs:
crates/dsp/src/iq.rs:
crates/dsp/src/lfsr.rs:
crates/dsp/src/spectrum.rs:
crates/dsp/src/units.rs:
crates/dsp/src/window.rs:
