/root/repo/target/release/deps/interscatter_net-16d9486deadc9854.d: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

/root/repo/target/release/deps/libinterscatter_net-16d9486deadc9854.rlib: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

/root/repo/target/release/deps/libinterscatter_net-16d9486deadc9854.rmeta: crates/net/src/lib.rs crates/net/src/engine.rs crates/net/src/entities.rs crates/net/src/event.rs crates/net/src/links.rs crates/net/src/medium.rs crates/net/src/metrics.rs crates/net/src/runner.rs crates/net/src/scenario.rs crates/net/src/time.rs

crates/net/src/lib.rs:
crates/net/src/engine.rs:
crates/net/src/entities.rs:
crates/net/src/event.rs:
crates/net/src/links.rs:
crates/net/src/medium.rs:
crates/net/src/metrics.rs:
crates/net/src/runner.rs:
crates/net/src/scenario.rs:
crates/net/src/time.rs:
