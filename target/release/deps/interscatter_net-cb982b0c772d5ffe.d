/root/repo/target/release/deps/interscatter_net-cb982b0c772d5ffe.d: crates/net/src/lib.rs

/root/repo/target/release/deps/libinterscatter_net-cb982b0c772d5ffe.rlib: crates/net/src/lib.rs

/root/repo/target/release/deps/libinterscatter_net-cb982b0c772d5ffe.rmeta: crates/net/src/lib.rs

crates/net/src/lib.rs:
