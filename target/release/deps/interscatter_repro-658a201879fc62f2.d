/root/repo/target/release/deps/interscatter_repro-658a201879fc62f2.d: src/lib.rs

/root/repo/target/release/deps/libinterscatter_repro-658a201879fc62f2.rlib: src/lib.rs

/root/repo/target/release/deps/libinterscatter_repro-658a201879fc62f2.rmeta: src/lib.rs

src/lib.rs:
