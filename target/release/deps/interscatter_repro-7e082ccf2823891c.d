/root/repo/target/release/deps/interscatter_repro-7e082ccf2823891c.d: src/lib.rs

/root/repo/target/release/deps/libinterscatter_repro-7e082ccf2823891c.rlib: src/lib.rs

/root/repo/target/release/deps/libinterscatter_repro-7e082ccf2823891c.rmeta: src/lib.rs

src/lib.rs:
