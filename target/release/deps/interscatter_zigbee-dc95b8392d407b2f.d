/root/repo/target/release/deps/interscatter_zigbee-dc95b8392d407b2f.d: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

/root/repo/target/release/deps/libinterscatter_zigbee-dc95b8392d407b2f.rlib: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

/root/repo/target/release/deps/libinterscatter_zigbee-dc95b8392d407b2f.rmeta: crates/zigbee/src/lib.rs crates/zigbee/src/chips.rs crates/zigbee/src/frame.rs crates/zigbee/src/oqpsk.rs crates/zigbee/src/phy.rs

crates/zigbee/src/lib.rs:
crates/zigbee/src/chips.rs:
crates/zigbee/src/frame.rs:
crates/zigbee/src/oqpsk.rs:
crates/zigbee/src/phy.rs:
