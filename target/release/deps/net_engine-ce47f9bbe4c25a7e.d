/root/repo/target/release/deps/net_engine-ce47f9bbe4c25a7e.d: crates/bench/benches/net_engine.rs

/root/repo/target/release/deps/net_engine-ce47f9bbe4c25a7e: crates/bench/benches/net_engine.rs

crates/bench/benches/net_engine.rs:
