/root/repo/target/release/deps/rayon-55f403b239d80009.d: crates/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-55f403b239d80009.rlib: crates/shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-55f403b239d80009.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
