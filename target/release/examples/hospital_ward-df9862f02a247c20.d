/root/repo/target/release/examples/hospital_ward-df9862f02a247c20.d: examples/hospital_ward.rs

/root/repo/target/release/examples/hospital_ward-df9862f02a247c20: examples/hospital_ward.rs

examples/hospital_ward.rs:
