/root/repo/target/release/examples/quickstart-69299209a3e95034.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-69299209a3e95034: examples/quickstart.rs

examples/quickstart.rs:
