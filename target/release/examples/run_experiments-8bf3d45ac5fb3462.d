/root/repo/target/release/examples/run_experiments-8bf3d45ac5fb3462.d: examples/run_experiments.rs

/root/repo/target/release/examples/run_experiments-8bf3d45ac5fb3462: examples/run_experiments.rs

examples/run_experiments.rs:
