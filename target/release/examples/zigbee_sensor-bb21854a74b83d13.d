/root/repo/target/release/examples/zigbee_sensor-bb21854a74b83d13.d: examples/zigbee_sensor.rs

/root/repo/target/release/examples/zigbee_sensor-bb21854a74b83d13: examples/zigbee_sensor.rs

examples/zigbee_sensor.rs:
