/root/repo/target/release/libinterscatter_bench.rlib: /root/repo/crates/bench/src/lib.rs
