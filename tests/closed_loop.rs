//! Closed-loop MAC contract tests: the engine's analytic downlink decode
//! model must agree with the waveform-level envelope-detector simulation
//! (`sim::downlink`, the ROADMAP's spot-check item), and the acceptance
//! geometry — poll → backscatter → ack transactions completing at 1, 10
//! and 100 tags — must hold.

use interscatter::net::engine::NetworkSim;
use interscatter::net::links::LinkBudget;
use interscatter::net::scenario::Scenario;
use interscatter::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The distance at which `scenario`'s received power hits `target_dbm`
/// (the path-loss model is monotone in distance).
fn distance_for_power(scenario: &DownlinkScenario, target_dbm: f64) -> f64 {
    let (mut lo, mut hi) = (0.01, 1000.0);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if scenario.received_power_dbm(mid) > target_dbm {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// Fraction of `frames` AM frames decoded without a single bit error at
/// `distance_m` — the full §4.4 pipeline: OFDM synthesis, AM crafting,
/// path loss, detector noise, envelope decoding.
fn waveform_frame_success(scenario: &DownlinkScenario, distance_m: f64, frames: usize) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD0_11);
    let bits: Vec<u8> = (0..16).map(|i| (i % 3 == 0) as u8).collect();
    let ok = (0..frames)
        .filter(|&f| {
            scenario
                .simulate_frame(&bits, distance_m, f as u64, &mut rng)
                .unwrap()
                == 0
        })
        .count();
    ok as f64 / frames as f64
}

/// Fraction of decode draws the engine's margin model delivers for a
/// downlink budget `margin_db` above the envelope detector's sensitivity —
/// the per-poll arbitration `crates/net` runs instead of synthesizing
/// waveforms.
fn engine_decode_rate(margin_db: f64, trials: usize) -> f64 {
    let detector = EnvelopeDetector::new(20e6);
    let budget = LinkBudget {
        median_rssi_dbm: detector.sensitivity_dbm + margin_db,
        // One conventional forward hop, as the engine's poll budgets use.
        shadow_sigma_db: LogDistanceModel::indoor_los(2.437e9).shadowing_sigma_db,
        sensitivity_dbm: detector.sensitivity_dbm,
        noise_floor_dbm: -45.0,
    };
    let mut rng = SmallRng::seed_from_u64(0xE27);
    let ok = (0..trials)
        .filter(|_| budget.packet_outcome(&mut rng).0)
        .count();
    ok as f64 / trials as f64
}

#[test]
fn engine_downlink_decode_matches_envelope_detector_trials() {
    let scenario = DownlinkScenario::fig13_bench(15.0);
    let sensitivity = scenario.detector.sensitivity_dbm;

    // At +6 dB of margin both models sit on the good side of the Fig. 13
    // cliff: the waveform trials decode essentially every frame, and the
    // engine's shadowed-margin draw agrees to within a few percent.
    let margin = 6.0;
    let d = distance_for_power(&scenario, sensitivity + margin);
    let waveform = waveform_frame_success(&scenario, d, 30);
    let engine = engine_decode_rate(margin, 4000);
    assert!(
        (waveform - engine).abs() < 0.05,
        "at +{margin} dB ({d:.2} m): waveform {waveform:.3} vs engine {engine:.3}"
    );

    // Far below sensitivity both models collapse, the cliff's other side.
    let d_far = distance_for_power(&scenario, sensitivity - 10.0);
    let waveform_far = waveform_frame_success(&scenario, d_far, 10);
    let engine_far = engine_decode_rate(-10.0, 4000);
    assert!(
        waveform_far < 0.05 && engine_far < 0.05,
        "at -10 dB: waveform {waveform_far:.3} vs engine {engine_far:.3}"
    );
}

#[test]
fn closed_loop_ward_completes_transactions_at_every_scale() {
    // The acceptance geometry: non-zero completion at 1, 10 and 100 tags,
    // with every delivery riding a full poll → backscatter → ack
    // transaction.
    for n_tags in [1usize, 10, 100] {
        let scenario = Scenario::hospital_ward(n_tags).closed_loop();
        let result = NetworkSim::new(&scenario, 42)
            .with_trace(false)
            .run()
            .unwrap();
        let m = &result.metrics;
        assert!(
            m.completed_transactions() > 0,
            "{n_tags} tags: no transactions completed"
        );
        assert_eq!(m.completed_transactions(), m.delivered_packets());
        assert!(m.transaction_completion_rate() > 0.5, "{n_tags} tags");
        assert!(m.transactions_per_sec() > 0.0);
    }
}

#[test]
fn closed_loop_pays_for_feedback_with_airtime() {
    // The loop's three frames per delivery cost slots: under the same
    // offered load the closed loop cannot beat open-loop delivery, but it
    // must still deliver the bulk of the traffic.
    let open = NetworkSim::new(&Scenario::hospital_ward(30), 9)
        .with_trace(false)
        .run()
        .unwrap()
        .metrics;
    let closed = NetworkSim::new(&Scenario::hospital_ward(30).closed_loop(), 9)
        .with_trace(false)
        .run()
        .unwrap()
        .metrics;
    assert!(closed.delivery_ratio() <= open.delivery_ratio() + 0.05);
    assert!(
        closed.delivery_ratio() > 0.5,
        "closed-loop delivery {}",
        closed.delivery_ratio()
    );
    // Open-loop runs never poll; closed-loop runs always do.
    assert_eq!(open.polls(), 0);
    assert!(closed.polls() > 0);
}
