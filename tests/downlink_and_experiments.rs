//! Integration tests for the downlink pipeline and smoke tests over every
//! experiment runner (the same entry points the bench harness uses).

use interscatter::backscatter::envelope::EnvelopeDetector;
use interscatter::dsp::iq::scale;
use interscatter::sim::experiments as exp;
use interscatter::sim::mac::{simulate_coexistence, CoexistenceConfig, InterferenceMode};
use interscatter::wifi::ofdm::am::{build_am_frame, decode_downlink_bits};
use interscatter::wifi::ofdm::ppdu::{OfdmRate, OfdmTransmitter};
use interscatter::wifi::ofdm::scrambler::SeedPolicy;
use interscatter::wifi::ofdm::symbol::SYMBOL_LEN;
use rand::{Rng, SeedableRng};

/// The downlink pipeline wired by hand: craft an AM frame for a predicted
/// seed, transmit it, attenuate it to a realistic level, and decode it both
/// with the sample-domain decoder and through the envelope-detector model.
#[test]
fn ofdm_am_downlink_end_to_end() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD0);
    let policy = SeedPolicy::Incrementing { start: 90 };
    let frame_index = 41;
    let seed = policy.seed_for_frame(frame_index);
    let tx = OfdmTransmitter::new(OfdmRate::Mbps36, seed);
    let command: Vec<u8> = (0..56).map(|_| rng.gen_range(0..=1u8)).collect();
    let am = build_am_frame(&tx, &command, &mut rng).unwrap();

    // Sample-domain decode (ideal receiver).
    assert_eq!(decode_downlink_bits(&am.frame.samples), command);

    // Envelope-detector decode at -25 dBm received power.
    let received = scale(
        &am.frame.samples,
        interscatter::dsp::units::db_to_amplitude(-25.0),
    );
    let detector = EnvelopeDetector::new(interscatter::wifi::ofdm::OFDM_SAMPLE_RATE);
    let decoded = detector.decode_am_downlink(&received, SYMBOL_LEN).unwrap();
    assert_eq!(decoded, command);

    // The frame is still a valid OFDM DATA field: a conventional OFDM
    // receiver with the right seed recovers the crafted bits exactly.
    let rx = interscatter::wifi::ofdm::ppdu::OfdmReceiver::new(OfdmRate::Mbps36, seed);
    let data_bits = rx.receive_data_bits(&am.frame.samples).unwrap();
    assert_eq!(data_bits, am.frame.data_bits);
}

/// The coexistence model and the reservation optimisations behave sanely
/// when driven directly (not through the Fig. 12 runner).
#[test]
fn coexistence_and_reservations() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0E1);
    let config = CoexistenceConfig::default();
    let baseline = simulate_coexistence(&config, InterferenceMode::None, 0.0, 1.0, &mut rng);
    let ssb = simulate_coexistence(
        &config,
        InterferenceMode::SingleSideband,
        1000.0,
        1.0,
        &mut rng,
    );
    let dsb = simulate_coexistence(
        &config,
        InterferenceMode::DoubleSideband,
        1000.0,
        1.0,
        &mut rng,
    );
    assert!(ssb.throughput_mbps > 0.95 * baseline.throughput_mbps);
    assert!(dsb.throughput_mbps < 0.6 * baseline.throughput_mbps);
    assert!(dsb.collision_fraction > ssb.collision_fraction);

    let busy = 0.6;
    let unprotected = interscatter::sim::mac::backscatter_delivery_probability(busy, false);
    let protected = interscatter::sim::mac::backscatter_delivery_probability(busy, true);
    assert!(protected > unprotected);
}

/// Every experiment runner completes with reduced parameters and produces a
/// non-empty report — the contract the bench harness and the
/// `run_experiments` example rely on.
#[test]
fn all_experiment_runners_smoke() {
    let fig06 = exp::fig06::run(&exp::fig06::Fig06Params {
        num_samples: 1 << 13,
        ..Default::default()
    })
    .unwrap();
    assert!(!exp::fig06::report(&fig06).is_empty());

    let fig09 = exp::fig09::run(1).unwrap();
    assert!(!exp::fig09::report(&fig09).is_empty());

    let fit = exp::packet_fit::run();
    assert!(!exp::packet_fit::report(&fit).is_empty());

    let fig10 = exp::fig10::run(&exp::fig10::Fig10Params {
        rx_distances_ft: vec![10.0, 50.0],
        ..Default::default()
    })
    .unwrap();
    assert!(!exp::fig10::report(&fig10).is_empty());

    let fig11 = exp::fig11::run(&exp::fig11::Fig11Params {
        locations: 3,
        packets_per_location: 3,
        ..Default::default()
    })
    .unwrap();
    assert!(!exp::fig11::report(&fig11).is_empty());

    let fig12 = exp::fig12::run(&exp::fig12::Fig12Params {
        duration_s: 0.2,
        ..Default::default()
    })
    .unwrap();
    assert!(!exp::fig12::report(&fig12).is_empty());

    let fig13 = exp::fig13::run(&exp::fig13::Fig13Params {
        distances_ft: vec![5.0, 30.0],
        frames: 1,
        bits_per_frame: 8,
        ..Default::default()
    })
    .unwrap();
    assert!(!exp::fig13::report(&fig13).is_empty());

    let (fig14_rows, fig14_cdf) = exp::fig14::run(&exp::fig14::Fig14Params {
        packets_per_location: 1,
        rssi_samples: 3,
        ..Default::default()
    })
    .unwrap();
    assert!(!exp::fig14::report(&fig14_rows, &fig14_cdf).is_empty());

    let fig15 = exp::fig15::run(&exp::fig15::Fig15Params::default()).unwrap();
    assert!(!exp::fig15::report(&fig15).is_empty());

    let fig16 = exp::fig16::run(&exp::fig16::Fig16Params::default()).unwrap();
    assert!(!exp::fig16::report(&fig16).is_empty());

    let fig17 = exp::fig17::run(&exp::fig17::Fig17Params {
        distances_in: vec![10.0, 60.0],
        payloads_per_distance: 2,
        ..Default::default()
    })
    .unwrap();
    assert!(!exp::fig17::report(&fig17).is_empty());

    let (power_rows, power_points) = exp::power::run();
    assert!(!exp::power::report(&power_rows, &power_points).is_empty());

    let seeds = exp::scrambler_seed::run(100);
    assert!(!exp::scrambler_seed::report(&seeds).is_empty());

    let square = exp::ablations::square_wave_ablation().unwrap();
    let guards = exp::ablations::guard_interval_ablation(&[4e-6]);
    let shifts = exp::ablations::shift_ablation(&[35.75e6]);
    assert!(!exp::ablations::report(&square, &guards, &shifts).is_empty());
}

/// The headline numbers recorded in EXPERIMENTS.md stay true: packet-fit
/// matches the paper exactly, the IC budget matches the paper within 2 %,
/// and the SSB/DSB ordering holds in both the spectral and the MAC domains.
#[test]
fn experiments_md_headline_numbers() {
    let fit = exp::packet_fit::run();
    assert_eq!(fit[1].max_psdu_bytes, Some(38));
    assert_eq!(fit[2].max_psdu_bytes, Some(104));
    assert_eq!(fit[3].max_psdu_bytes, Some(209));

    let (power_rows, _) = exp::power::run();
    for row in &power_rows {
        assert!(
            (row.model_w - row.paper_w).abs() / row.paper_w < 0.02,
            "{}",
            row.block
        );
    }

    let [ssb, dsb] = exp::fig06::run(&exp::fig06::Fig06Params {
        num_samples: 1 << 14,
        ..Default::default()
    })
    .unwrap();
    assert!(ssb.suppression_db > 15.0);
    assert!(dsb.suppression_db.abs() < 1.0);
}
