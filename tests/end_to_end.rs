//! Cross-crate integration tests: the complete interscatter pipelines wired
//! together exactly as a deployment would use them, at full waveform
//! fidelity where that is the point of the test.

use interscatter::backscatter::ssb::{backscatter, reflection_sequence, SsbConfig};
use interscatter::dsp::filter::downsample;
use interscatter::dsp::iq::{frequency_shift, mean_power, rssi_dbm};
use interscatter::dsp::spectrum::{band_power_db, welch_psd, WelchConfig};
use interscatter::prelude::*;
use interscatter::sim::uplink::UplinkScenario;
use rand::SeedableRng;

/// The headline claim of the paper, end to end at waveform level: a BLE
/// advertisement crafted into a single tone, backscattered through the
/// single-sideband tag into an 802.11b packet, decoded by the commodity
/// Wi-Fi receiver model with the original payload intact.
#[test]
fn bluetooth_becomes_wifi_end_to_end() {
    // --- Bluetooth side: the single-tone advertisement at 176 MS/s ---------
    let sample_rate = 176e6;
    let ble_cfg = interscatter::ble::gfsk::GfskConfig {
        sample_rate,
        ..Default::default()
    };
    let advert = interscatter::ble::single_tone::single_tone_packet(
        BleChannel::ADV_38,
        [0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF],
        31,
        TonePolarity::High,
    )
    .unwrap();
    let air_bits = advert.to_air_bits(BleChannel::ADV_38).unwrap();
    let modulator = interscatter::ble::gfsk::GfskModulator::new(ble_cfg).unwrap();
    let ble_waveform = modulator.modulate(&air_bits, 0.0);

    // --- Tag side: synthesize a 2 Mbps Wi-Fi packet in the payload window --
    let spb = ble_cfg.samples_per_bit();
    let payload_start = interscatter::ble::packet::AdvertisingPacket::payload_bit_offset() * spb;
    let payload_end = advert.crc_bit_offset() * spb;
    let carrier = &ble_waveform[payload_start..payload_end];

    // A short Wi-Fi payload that fits in the 248 µs window at 2 Mbps even
    // with the long PLCP preamble this transmitter emits (192 µs + PSDU).
    let wifi_payload = b"implanted";
    let tag_tx = Dot11bTransmitter::new(DsssRate::Mbps2);
    let frame = tag_tx.transmit(wifi_payload).unwrap();
    let spc = (sample_rate / interscatter::wifi::dot11b::CHIP_RATE).round() as usize;
    let baseband = interscatter::dsp::filter::upsample_hold(&frame.chips, spc).unwrap();
    assert!(
        baseband.len() <= carrier.len(),
        "Wi-Fi frame ({} samples) must fit the BLE payload window ({} samples)",
        baseband.len(),
        carrier.len()
    );

    let shift = interscatter::backscatter::ssb::PROTOTYPE_SHIFT_HZ;
    let ssb = SsbConfig::new(sample_rate, shift);
    let reflection = reflection_sequence(&ssb, &baseband).unwrap();
    let scattered = backscatter(&carrier[..reflection.len()], &reflection).unwrap();

    // --- Receiver side: down-convert from the +35.75 MHz offset, decimate to
    //     chip rate, decode ------------------------------------------------
    // The tone sits 250 kHz above the BLE channel centre (TonePolarity::High),
    // so the synthesized packet is centred at shift + 250 kHz.
    let downconverted = frequency_shift(&scattered, -(shift + 250e3), sample_rate, 0.0);
    let chips = downsample(&downconverted, spc).unwrap();
    let rx = Dot11bReceiver::with_sensitivity(-120.0);
    let received = rx
        .receive(&chips)
        .expect("backscattered Wi-Fi packet should decode");
    assert_eq!(received.payload, wifi_payload);
    assert!(received.fcs_ok, "FCS must validate end to end");
    assert_eq!(received.rate, DsssRate::Mbps2);

    // --- Spectral check: single sideband, mirror suppressed ----------------
    let psd = welch_psd(&scattered, sample_rate, &WelchConfig::default()).unwrap();
    let wanted = band_power_db(&psd, shift - 11e6, shift + 11e6);
    let mirror = band_power_db(&psd, -shift - 11e6, -shift + 11e6);
    assert!(
        wanted - mirror > 8.0,
        "mirror suppression only {} dB",
        wanted - mirror
    );
}

/// The tag state machine driven by the envelope detector: it must not start
/// reflecting before the payload section of the Bluetooth packet.
#[test]
fn tag_state_machine_times_backscatter_into_the_payload_window() {
    let sample_rate = 176e6;
    let config = TagConfig {
        sample_rate,
        shift_hz: interscatter::backscatter::ssb::PROTOTYPE_SHIFT_HZ,
        target: TargetPhy::Wifi(DsssRate::Mbps2),
        sideband: SidebandMode::Single,
        guard_interval_s: 4e-6,
    };
    let tag = InterscatterTag::new(config).unwrap();

    // 30 µs of silence, then a strong advertisement-length burst.
    let silence_samples = (30e-6 * sample_rate) as usize;
    let mut incident = vec![Cplx::new(1e-5, 0.0); silence_samples];
    let burst = interscatter::dsp::iq::scale(
        &interscatter::dsp::iq::tone(250e3, sample_rate, (400e-6 * sample_rate) as usize, 0.0),
        0.05,
    );
    incident.extend(burst);

    let result = tag
        .backscatter_packet(&incident, b"neural data", 104e-6)
        .unwrap();
    let start_time_s = result.start_sample as f64 / sample_rate;
    // Packet detected at ~30 µs, payload offset 104 µs + 4 µs guard.
    assert!(
        start_time_s > 30e-6 + 104e-6,
        "backscatter started too early: {start_time_s}"
    );
    assert!(
        start_time_s < 30e-6 + 104e-6 + 10e-6,
        "backscatter started too late: {start_time_s}"
    );
    // The scattered waveform is weaker than the incident one (passive tag).
    let incident_power =
        mean_power(&incident[result.start_sample..result.start_sample + result.active_samples]);
    let scattered_power = mean_power(
        &result.scattered[result.start_sample..result.start_sample + result.active_samples],
    );
    assert!(scattered_power <= incident_power * 1.01);
}

/// The downlink and uplink assembled through the facade: the high-level API
/// produces consistent objects.
#[test]
fn facade_configures_consistent_pipelines() {
    let system = Interscatter::default();
    let advert = system
        .single_tone_advertisement([9, 8, 7, 6, 5, 4])
        .unwrap();
    assert_eq!(advert.advertiser_address, [9, 8, 7, 6, 5, 4]);
    let tag = system.tag().unwrap();
    assert_eq!(tag.config.shift_hz, system.shift_hz);
    let rssi_near = system.uplink_rssi_dbm(10.0, 1.0, 10.0);
    let rssi_far = system.uplink_rssi_dbm(10.0, 1.0, 80.0);
    assert!(rssi_near > rssi_far);
    assert!((20e-6..60e-6).contains(&system.ic_power_w()));
}

/// The uplink scenario produces consistent results between its link-budget
/// and waveform-level paths: a link whose budget predicts a comfortable SNR
/// delivers packets, and one far below sensitivity does not.
#[test]
fn link_budget_and_waveform_levels_agree() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let strong = UplinkScenario::fig10_bench(20.0, 1.0, 10.0);
    assert!(strong.snr_db() > 15.0);
    let (per, ber) = strong.wifi_error_rates(31, 5, &mut rng).unwrap();
    assert_eq!(per.per(), 0.0);
    assert_eq!(ber.ber(), 0.0);

    let weak = UplinkScenario::fig10_bench(0.0, 3.0, 90.0);
    assert!(weak.rssi_dbm() < -90.0);
    let (per, _) = weak.wifi_error_rates(31, 5, &mut rng).unwrap();
    assert!(per.per() > 0.5);
}

/// ZigBee path end to end at waveform level through the tag object.
#[test]
fn bluetooth_becomes_zigbee_end_to_end() {
    let sample_rate = 88e6;
    let config = TagConfig {
        sample_rate,
        shift_hz: -6e6,
        target: TargetPhy::Zigbee,
        sideband: SidebandMode::Single,
        guard_interval_s: 4e-6,
    };
    let tag = InterscatterTag::new(config).unwrap();
    let payload = b"zigbee sensor";
    let reflection = tag.reflection_for_payload(payload).unwrap();
    // Apply to a unit carrier and decode after shifting back up by 6 MHz.
    let carrier = interscatter::dsp::iq::tone(0.0, sample_rate, reflection.len(), 0.0);
    let scattered = backscatter(&carrier, &reflection).unwrap();
    let recentred = frequency_shift(&scattered, 6e6, sample_rate, 0.0);
    let spc = (sample_rate / interscatter::zigbee::oqpsk::CHIP_RATE).round() as usize;
    let at_8msps = downsample(&recentred, spc / 4).unwrap(); // ZigbeeReceiver default runs at 8 MS/s
    let rx = ZigbeeReceiver::default();
    let received = rx
        .receive(&at_8msps)
        .expect("backscattered ZigBee packet should decode");
    assert_eq!(received.payload, payload);
    assert!(rssi_dbm(&at_8msps) > -40.0);
}
