//! Engine-determinism contract: two runs of the same scenario with the
//! same seed must produce byte-identical event traces and metrics; a
//! different seed must produce a different trace. This is what makes a
//! reported fleet result reproducible from `(scenario, seed)` alone.

use interscatter::net::coex::{CoexConfig, CoexSource, ReStripe};
use interscatter::net::engine::NetworkSim;
use interscatter::net::prelude::Position;
use interscatter::net::runner::MonteCarlo;
use interscatter::net::scenario::Scenario;
use interscatter::net::sched::SchedPolicy;
use interscatter::net::trace_digest::fnv1a;

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::hospital_ward(24),
        Scenario::contact_lens_fleet(10),
        Scenario::card_to_card_room(6),
        Scenario::zigbee_wing(12),
        // The closed-loop variants run the poll/ack MAC: their traces
        // interleave downlink frames with the uplink and must reproduce
        // just as exactly.
        Scenario::hospital_ward(24).closed_loop(),
        Scenario::contact_lens_fleet(10).closed_loop(),
        Scenario::card_to_card_room(6).closed_loop(),
        Scenario::zigbee_wing(12).closed_loop(),
        // Mobile variants interleave mobility ticks (per-tag walks plus
        // row-level LinkMatrix refreshes) with everything above; the walk
        // itself must replay exactly from the seed.
        Scenario::ambulatory_ward(12),
        Scenario::ambulatory_ward(12).closed_loop(),
        // One case per arbitration policy: every scheduler is RNG-free, so
        // its picks — and hence the whole trace — replay exactly from the
        // seed (round-robin is the default everywhere above; the
        // margin-aware case also exercises the sub-band striping axis).
        Scenario::hospital_ward(16).with_scheduler(SchedPolicy::proportional_fair()),
        Scenario::hospital_ward(16)
            .closed_loop()
            .with_scheduler(SchedPolicy::deadline_aware()),
        Scenario::ambulatory_ward(10)
            .closed_loop()
            .with_scheduler(SchedPolicy::margin_aware()),
        Scenario::hospital_ward(16)
            .with_subband_striping()
            .with_scheduler(SchedPolicy::margin_aware()),
        // Coexistence cases: every external generator kind injects real
        // seeded emissions into the medium, and each source's arrival
        // process rides its own RNG stream — so the trace (including every
        // collision with external traffic) replays exactly from the seed.
        Scenario::hospital_ward(12).with_coex(CoexConfig::with_sources(vec![
            CoexSource::wifi_neighbor(Position::new(6.0, 8.0, 2.0), 6, 0.3),
            CoexSource::hidden_wifi(Position::new(2.0, 8.0, 2.0), 1, 0.15),
            CoexSource::ble_beacon(Position::new(0.5, 0.5, 1.0), 0.05),
            CoexSource::zigbee_neighbor(Position::new(11.0, 1.0, 1.0), 17, 40.0),
            CoexSource::microwave_oven(Position::new(11.5, 8.5, 1.0)),
            CoexSource::constant(2, 0.1),
        ])),
        // The legacy bridge: constant sources mirroring the sink scalars.
        Scenario::hospital_ward(12)
            .closed_loop()
            .with_constant_coex(),
        // The congestion preset, static and with a mid-run adaptive
        // re-stripe (the re-tuned tags' new channels, budgets and the
        // trace line of the decision itself must all replay byte for
        // byte), open and closed loop.
        Scenario::congested_ward(12),
        Scenario::congested_ward(12).with_restripe(ReStripe::default()),
        Scenario::congested_ward(10)
            .closed_loop()
            .with_restripe(ReStripe::default()),
    ]
}

#[test]
fn same_seed_same_bytes() {
    for scenario in scenarios() {
        let a = NetworkSim::new(&scenario, 0xDEC0DE).run().unwrap();
        let b = NetworkSim::new(&scenario, 0xDEC0DE).run().unwrap();
        let bytes_a = a.trace.to_bytes();
        assert!(
            !bytes_a.is_empty(),
            "{}: trace must be recorded",
            scenario.name
        );
        assert_eq!(
            bytes_a,
            b.trace.to_bytes(),
            "{}: same-seed traces must be byte-identical",
            scenario.name
        );
        // The shared FNV-1a helper and the trace's own digest agree — the
        // same 64-bit fingerprint identifies the run everywhere.
        assert_eq!(
            fnv1a(&bytes_a),
            b.trace.digest(),
            "{}: shared digest helper must match EventTrace::digest",
            scenario.name
        );
        assert_eq!(
            format!("{:?}", a.metrics),
            format!("{:?}", b.metrics),
            "{}: same-seed metrics must be identical",
            scenario.name
        );
    }
}

#[test]
fn different_seed_different_bytes() {
    for scenario in scenarios() {
        let a = NetworkSim::new(&scenario, 1).run().unwrap();
        let b = NetworkSim::new(&scenario, 2).run().unwrap();
        assert_ne!(
            a.trace.to_bytes(),
            b.trace.to_bytes(),
            "{}: different seeds must decorrelate the trace",
            scenario.name
        );
    }
}

#[test]
fn determinism_survives_the_parallel_runner() {
    // The Monte-Carlo runner fans trials across threads; aggregation must
    // not depend on completion order.
    let mc = MonteCarlo::new(Scenario::hospital_ward(16), 6, 77);
    let a = mc.run().unwrap();
    let b = mc.run().unwrap();
    assert_eq!(format!("{:?}", a.trials), format!("{:?}", b.trials));
    assert_eq!(a.report(), b.report());
}

#[test]
fn trace_is_meaningful() {
    let scenario = Scenario::hospital_ward(8);
    let result = NetworkSim::new(&scenario, 5).run().unwrap();
    let text = String::from_utf8(result.trace.to_bytes()).unwrap();
    assert!(text.contains("arrival"), "trace should log packet arrivals");
    assert!(text.contains("tx start"), "trace should log grants");
    assert!(text.contains("tx end"), "trace should log outcomes");
    // Timestamps are non-decreasing.
    let mut last = 0u64;
    for line in text.lines() {
        let ns: u64 = line[1..13].trim().parse().unwrap();
        assert!(ns >= last, "trace timestamps must be monotone");
        last = ns;
    }
}

#[test]
fn mid_run_restripe_replays_exactly() {
    // The sharpest determinism case: a congested run whose carriers
    // re-tune themselves (and their tags' channels, receivers and link
    // budgets) mid-run. Both the decision and everything downstream of it
    // must replay byte for byte.
    let scenario = Scenario::congested_ward(12).with_restripe(ReStripe::default());
    let a = NetworkSim::new(&scenario, 0xC0EC).run().unwrap();
    let b = NetworkSim::new(&scenario, 0xC0EC).run().unwrap();
    assert_eq!(a.trace.to_bytes(), b.trace.to_bytes());
    assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
    assert!(a.metrics.restripes() > 0, "the run must actually re-stripe");
    let text = String::from_utf8(a.trace.to_bytes()).unwrap();
    assert!(text.contains("re-stripe: subband"));
    assert!(text.contains("coex wifi-bursty"));
}

#[test]
fn closed_loop_trace_shows_whole_transactions() {
    let scenario = Scenario::hospital_ward(8).closed_loop();
    let a = NetworkSim::new(&scenario, 5).run().unwrap();
    let b = NetworkSim::new(&scenario, 5).run().unwrap();
    assert_eq!(
        a.trace.to_bytes(),
        b.trace.to_bytes(),
        "closed-loop traces must be byte-identical per seed"
    );
    let text = String::from_utf8(a.trace.to_bytes()).unwrap();
    // The poll → backscatter → ack chain must be visible in order for at
    // least one transaction.
    let poll = text.find("poll decoded").expect("a decoded poll");
    let response = text[poll..]
        .find("backscatter response start")
        .expect("a response after the poll");
    let ack = text[poll + response..]
        .find("ack decoded (transaction complete")
        .expect("an ack after the response");
    assert!(ack > 0 && a.metrics.completed_transactions() > 0);
}
