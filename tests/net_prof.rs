//! The execution observatory's determinism contract: profiling is
//! **byte-neutral** — the event trace, the metrics report and the
//! telemetry output are identical with profiling on or off, at every
//! shard count — while the prof output itself carries the phase totals,
//! per-cell loads and Chrome-trace export `PROF_net.json` is built from.
//! See `net::prof` for the contract and detlint's `wall_clock` scoping.

use interscatter::net::engine::NetworkSim;
use interscatter::net::prelude::ExecutionSection;
use interscatter::net::scenario::Scenario;
use std::collections::BTreeMap;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn shaped(scenario: &Scenario, shards: usize, profile: bool) -> Scenario {
    scenario
        .clone()
        .builder()
        .execution(ExecutionSection::new().shards(shards).profile(profile))
        .build()
        .unwrap()
}

#[test]
fn profiling_is_byte_neutral_at_every_shard_count() {
    // The acceptance matrix: a single-cell preset (congested_ward) and a
    // multi-cell one (campus), profile on vs off, shards 1/2/4/8.
    for scenario in [Scenario::congested_ward(9), Scenario::campus(768)] {
        for shards in SHARD_COUNTS {
            let off = interscatter::net::run(&shaped(&scenario, shards, false), 42).unwrap();
            let on = interscatter::net::run(&shaped(&scenario, shards, true), 42).unwrap();
            assert_eq!(
                on.trace.digest(),
                off.trace.digest(),
                "{}: profiling changed the digest at {shards} shards",
                scenario.name
            );
            assert_eq!(
                on.metrics.report(),
                off.metrics.report(),
                "{}: profiling changed the report at {shards} shards",
                scenario.name
            );
            assert_eq!(
                on.telemetry, off.telemetry,
                "{}: profiling changed the telemetry at {shards} shards",
                scenario.name
            );
            // The prof report exists exactly when asked for — and only
            // there do wall-clock quantities live.
            assert!(off.prof.is_none());
            let prof = on.prof.expect("profiled run carries a report");
            assert!(!prof.spans.is_empty());
            assert_eq!(prof.scenario, scenario.name);
        }
    }
}

#[test]
fn profiled_single_cell_runs_still_reproduce_the_legacy_engine() {
    let scenario = Scenario::hospital_ward(8).closed_loop();
    let legacy = NetworkSim::new(&scenario, 42).run().unwrap();
    for shards in SHARD_COUNTS {
        let run = interscatter::net::run(&shaped(&scenario, shards, true), 42).unwrap();
        assert_eq!(
            run.trace.to_bytes(),
            legacy.trace.to_bytes(),
            "profiled run diverged from the legacy engine at {shards} shards"
        );
        assert_eq!(run.metrics.report(), legacy.metrics.report());
        // Shard-load telemetry is a multi-cell quantity; single-cell runs
        // keep the legacy metrics shape byte for byte.
        assert!(run.metrics.shard_load.is_none());
    }
}

#[test]
fn profiled_campus_summary_carries_phases_loads_and_exports() {
    let scenario = shaped(&Scenario::campus(768), 4, true);
    // The builder timed its validation pass for the scenario_build span.
    assert!(scenario.execution.build_ns.is_some());

    let run = interscatter::net::run(&scenario, 42).unwrap();
    let prof = run.prof.as_ref().expect("profiled run carries a report");
    let summary = prof.summary();

    let phases: BTreeMap<&str, u64> = summary
        .phase_totals_ns
        .iter()
        .map(|(name, ns)| (name.as_str(), *ns))
        .collect();
    for phase in [
        "scenario_build",
        "partition",
        "engine_init",
        "link_build",
        "epoch",
        "exchange",
        "finalize",
        "merge_finalize",
    ] {
        assert!(phases.contains_key(phase), "missing phase {phase}");
    }
    assert!(phases["epoch"] > 0, "epoch busy time is empty");
    assert!(summary.exchange_ns > 0, "exchange overhead is empty");

    // The deterministic shard-load ledger: every engine event is charged
    // to exactly one cell, and the profile sees the same cells.
    let load = run
        .metrics
        .shard_load
        .as_ref()
        .expect("multi-cell run records shard load");
    assert!(load.cell_events.len() > 1);
    assert_eq!(load.cell_events.iter().sum::<u64>(), run.telemetry.events);
    assert_eq!(summary.cells.len(), load.cell_events.len());
    assert!(summary.cells.iter().all(|c| !c.epochs.is_empty()));
    let fairness = load.load_fairness();
    assert!((0.0..=1.0).contains(&fairness) && fairness > 0.0);
    assert!(summary.critical_path_epoch.is_some());

    // Chrome trace export: complete events, one tid per track.
    let chrome = prof.to_chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("\"name\":\"epoch\""));
    assert!(chrome.contains("\"displayTimeUnit\":\"ms\""));

    // The PROF_net.json document joins the summary with the load block.
    let doc = summary.to_json(run.metrics.shard_load.as_ref());
    assert!(doc.contains("\"phase_totals_ns\""));
    assert!(doc.contains("\"load\""));
    assert!(doc.contains("\"fairness\""));
}

#[test]
fn sharded_progress_lines_carry_execution_context() {
    let scenario = Scenario::campus(768)
        .builder()
        .execution(ExecutionSection::new().progress(0.5, false))
        .build()
        .unwrap();
    let run = interscatter::net::run(&scenario, 42).unwrap();
    let lines = &run.telemetry.progress;
    assert!(!lines.is_empty(), "no progress lines collected");
    for line in lines {
        assert!(line.contains("sharded progress: epoch "), "{line}");
        assert!(line.contains("ev/epoch"), "{line}");
        assert!(line.contains("cells active"), "{line}");
    }
}

#[test]
fn monte_carlo_pools_per_trial_profiles_in_trial_order() {
    let shape = |profile: bool| {
        Scenario::hospital_ward(6)
            .builder()
            .execution(ExecutionSection::new().trials(3).profile(profile))
            .build()
            .unwrap()
    };
    let profiled = interscatter::net::run_trials(&shape(true), 7).unwrap();
    assert_eq!(profiled.trials.len(), 3);
    assert_eq!(profiled.prof.len(), 3);
    for summary in &profiled.prof {
        assert!(summary
            .phase_totals_ns
            .iter()
            .any(|(name, _)| name == "epoch"));
    }
    // Profiling never perturbs the aggregated metrics.
    let plain = interscatter::net::run_trials(&shape(false), 7).unwrap();
    assert!(plain.prof.is_empty());
    assert_eq!(
        format!("{:?}", profiled.trials),
        format!("{:?}", plain.trials)
    );
}
