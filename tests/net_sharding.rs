//! The sharded-execution determinism contract: a scenario's trace digest,
//! metrics report and telemetry are **byte-identical at any shard count**
//! (the shard knob chunks the fixed cell list, it never changes the cell
//! structure), and on single-cell scenarios the sharded executor is
//! byte-identical to the legacy unsharded engine. See `net::shard` for
//! the partitioning model and the epoch-exchange relaxation.

use interscatter::net::engine::NetworkSim;
use interscatter::net::prelude::ExecutionSection;
use interscatter::net::scenario::Scenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn with_shards(scenario: &Scenario, shards: usize) -> Scenario {
    scenario
        .clone()
        .builder()
        .execution(ExecutionSection::new().shards(shards))
        .build()
        .unwrap()
}

/// Every closed-loop preset, bedside through campus — the matrix the
/// digest-invariance contract is pinned on.
fn closed_loop_presets() -> Vec<Scenario> {
    vec![
        Scenario::hospital_ward(8).closed_loop(),
        Scenario::contact_lens_fleet(6).closed_loop(),
        Scenario::card_to_card_room(5).closed_loop(),
        Scenario::zigbee_wing(40).closed_loop(),
        Scenario::congested_ward(9),
        Scenario::campus(768),
    ]
}

#[test]
fn every_preset_digest_is_shard_count_invariant() {
    for scenario in closed_loop_presets() {
        let reference = interscatter::net::run(&with_shards(&scenario, 1), 42)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        assert!(
            !reference.trace.to_bytes().is_empty(),
            "{}: empty trace",
            scenario.name
        );
        for shards in SHARD_COUNTS {
            let run = interscatter::net::run(&with_shards(&scenario, shards), 42).unwrap();
            assert_eq!(
                run.trace.digest(),
                reference.trace.digest(),
                "{} diverged at {shards} shards",
                scenario.name
            );
            assert_eq!(
                run.metrics.report(),
                reference.metrics.report(),
                "{} report diverged at {shards} shards",
                scenario.name
            );
            assert_eq!(
                run.telemetry, reference.telemetry,
                "{} telemetry diverged at {shards} shards",
                scenario.name
            );
        }
    }
}

#[test]
fn single_cell_presets_reproduce_the_legacy_engine() {
    // One interference cell (shared receivers couple everything): the
    // sharded executor must reproduce `NetworkSim::run` byte for byte,
    // whatever the shard count.
    for scenario in [
        Scenario::hospital_ward(8),
        Scenario::hospital_ward(8).closed_loop(),
        Scenario::contact_lens_fleet(6).closed_loop(),
        Scenario::card_to_card_room(5).closed_loop(),
    ] {
        let legacy = NetworkSim::new(&scenario, 42).run().unwrap();
        for shards in SHARD_COUNTS {
            let run = interscatter::net::run(&with_shards(&scenario, shards), 42).unwrap();
            assert_eq!(
                run.trace.to_bytes(),
                legacy.trace.to_bytes(),
                "{} at {shards} shards",
                scenario.name
            );
            assert_eq!(run.metrics.report(), legacy.metrics.report());
        }
    }
}

#[test]
fn random_epoch_lengths_keep_sharded_equal_to_single_shard() {
    // Property: for ANY epoch length, the digest at 4 shards equals the
    // digest at 1 shard (same epoch) — the exchange cadence may change
    // what the simulation computes, but never lets worker count in.
    let mut rng = StdRng::seed_from_u64(0x5EED_541A);
    let multi = Scenario::campus(512);
    let single = Scenario::hospital_ward(6).closed_loop();
    let legacy_single = NetworkSim::new(&single, 7).run().unwrap();
    for case in 0..8 {
        let epoch_s = 10f64.powf(rng.gen_range(-4.0..-0.3));
        for scenario in [&multi, &single] {
            let shape = |shards: usize| {
                scenario
                    .clone()
                    .builder()
                    .execution(ExecutionSection::new().shards(shards).epoch_s(epoch_s))
                    .build()
                    .unwrap()
            };
            let one = interscatter::net::run(&shape(1), 7).unwrap();
            let four = interscatter::net::run(&shape(4), 7).unwrap();
            assert_eq!(
                one.trace.digest(),
                four.trace.digest(),
                "case {case}: {} diverged at epoch {epoch_s} s",
                scenario.name
            );
            assert_eq!(one.metrics.report(), four.metrics.report());
        }
        // Single-cell runs chunk the legacy engine's own event loop, so
        // any epoch length reproduces it exactly.
        let chunked = single
            .clone()
            .builder()
            .execution(ExecutionSection::new().epoch_s(epoch_s))
            .build()
            .unwrap();
        let run = interscatter::net::run(&chunked, 7).unwrap();
        assert_eq!(
            run.trace.to_bytes(),
            legacy_single.trace.to_bytes(),
            "case {case}: epoch {epoch_s} s perturbed the single-cell run"
        );
    }
}
