//! Property-style tests on the workspace's core invariants.
//!
//! These complement the unit tests by exercising the framing, coding and
//! modulation round trips on randomized inputs, and the tag's passivity
//! constraint on randomized payloads. The seed version of this file used
//! `proptest`; the build environment has no registry access, so each
//! property now draws its 32 cases from a seeded [`rand::rngs::StdRng`] —
//! fully deterministic, with the failing input printable from the case
//! index.

use interscatter::backscatter::ssb::{reflection_sequence, SsbConfig};
use interscatter::ble::channels::BleChannel;
use interscatter::ble::packet::AdvertisingPacket;
use interscatter::dsp::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};
use interscatter::dsp::crc::{ble_crc24, crc16_ccitt, crc32_ieee_u32, BLE_ADV_CRC_INIT};
use interscatter::dsp::fft::{fft, ifft};
use interscatter::dsp::lfsr::Lfsr7;
use interscatter::dsp::Cplx;
use interscatter::wifi::dot11b::scrambler::DsssScrambler;
use interscatter::wifi::dot11b::{Dot11bReceiver, Dot11bTransmitter, DsssRate};
use interscatter::wifi::ofdm::convolutional::{encode, viterbi_decode, CodeRate};
use interscatter::wifi::ofdm::interleaver::{deinterleave, interleave};
use interscatter::zigbee::{ZigbeeReceiver, ZigbeeTransmitter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 32;

fn rng_for(test_seed: u64) -> StdRng {
    StdRng::seed_from_u64(0x5EED_0000 ^ test_seed)
}

fn random_bytes(rng: &mut StdRng, len_range: std::ops::Range<usize>) -> Vec<u8> {
    let len = rng.gen_range(len_range);
    (0..len).map(|_| rng.gen()).collect()
}

fn random_bits(rng: &mut StdRng, len_range: std::ops::Range<usize>) -> Vec<u8> {
    let len = rng.gen_range(len_range);
    (0..len).map(|_| rng.gen_range(0..=1u8)).collect()
}

/// Bit/byte packing round-trips for arbitrary byte strings.
#[test]
fn bits_bytes_round_trip() {
    let mut rng = rng_for(1);
    for case in 0..CASES {
        let data = random_bytes(&mut rng, 0..64);
        let bits = bytes_to_bits_lsb(&data);
        assert_eq!(bits_to_bytes_lsb(&bits), data, "case {case}");
    }
}

/// CRCs change when any single bit of the input changes.
#[test]
fn crc_detects_single_bit_flips() {
    let mut rng = rng_for(2);
    for case in 0..CASES {
        let data = random_bytes(&mut rng, 1..48);
        let byte_idx = rng.gen_range(0..data.len());
        let bit_idx = rng.gen_range(0u8..8);
        let mut corrupted = data.clone();
        corrupted[byte_idx] ^= 1 << bit_idx;
        assert_ne!(
            crc32_ieee_u32(&data),
            crc32_ieee_u32(&corrupted),
            "case {case}"
        );
        assert_ne!(crc16_ccitt(&data), crc16_ccitt(&corrupted), "case {case}");
        assert_ne!(
            ble_crc24(&data, BLE_ADV_CRC_INIT),
            ble_crc24(&corrupted, BLE_ADV_CRC_INIT),
            "case {case}"
        );
    }
}

/// BLE whitening is always an involution, for every channel and payload.
#[test]
fn whitening_is_involutive() {
    let mut rng = rng_for(3);
    for case in 0..CASES {
        let channel = rng.gen_range(0u8..40);
        let bits = random_bits(&mut rng, 0..256);
        let mut a = Lfsr7::ble_whitening_for_channel(channel);
        let whitened = a.whiten(&bits);
        let mut b = Lfsr7::ble_whitening_for_channel(channel);
        assert_eq!(b.whiten(&whitened), bits, "case {case} channel {channel}");
    }
}

/// The FFT/IFFT pair is the identity for arbitrary signals.
#[test]
fn fft_round_trip() {
    let mut rng = rng_for(4);
    for case in 0..CASES {
        let x: Vec<Cplx> = (0..64)
            .map(|_| Cplx::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let back = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-9, "case {case}");
        }
    }
}

/// BLE advertising packets round-trip through framing and whitening for
/// arbitrary payloads and addresses on every advertising channel.
#[test]
fn ble_packet_round_trip() {
    let mut rng = rng_for(5);
    for case in 0..CASES {
        let mut address = [0u8; 6];
        for b in &mut address {
            *b = rng.gen();
        }
        let payload = random_bytes(&mut rng, 0..32);
        let channel =
            [BleChannel::ADV_37, BleChannel::ADV_38, BleChannel::ADV_39][rng.gen_range(0..3usize)];
        let packet = AdvertisingPacket::new(address, &payload).unwrap();
        let bits = packet.to_air_bits(channel).unwrap();
        let back = AdvertisingPacket::from_air_bits(&bits, channel).unwrap();
        assert_eq!(back, packet, "case {case}");
    }
}

/// The 802.11b self-synchronising scrambler round-trips for any seed.
#[test]
fn dsss_scrambler_round_trip() {
    let mut rng = rng_for(6);
    for case in 0..CASES {
        let seed = rng.gen_range(0u8..128);
        let bits = random_bits(&mut rng, 0..512);
        let mut tx = DsssScrambler::new(seed);
        let scrambled = tx.scramble(&bits);
        let mut rx = DsssScrambler::new(seed);
        assert_eq!(rx.descramble(&scrambled), bits, "case {case} seed {seed}");
    }
}

/// The 802.11a/g convolutional code round-trips at every rate for arbitrary
/// terminated inputs.
#[test]
fn convolutional_round_trip() {
    let mut rng = rng_for(7);
    for case in 0..CASES {
        let mut data = random_bits(&mut rng, 24..240);
        let rate = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters]
            [rng.gen_range(0..3usize)];
        // Pad to a multiple of 6 so every punctured rate stays aligned, then
        // terminate.
        while !data.len().is_multiple_of(6) {
            data.push(0);
        }
        data.extend([0u8; 6]);
        let coded = encode(&data, rate);
        let decoded = viterbi_decode(&coded, rate, true).unwrap();
        assert_eq!(decoded, data, "case {case} rate {rate:?}");
    }
}

/// The OFDM interleaver is a bijection for every supported constellation.
#[test]
fn interleaver_round_trip() {
    let mut rng = rng_for(8);
    for case in 0..CASES {
        let bits = random_bits(&mut rng, 288..289);
        let n_bpsc = [1usize, 2, 4, 6][rng.gen_range(0..4usize)];
        let n_cbps = 48 * n_bpsc;
        let symbol = &bits[..n_cbps];
        let inter = interleave(symbol, n_cbps, n_bpsc);
        assert_eq!(
            deinterleave(&inter, n_cbps, n_bpsc),
            symbol.to_vec(),
            "case {case}"
        );
    }
}

/// A noiseless 802.11b link is error-free for arbitrary payloads at every
/// rate — the "standards-compliant" invariant of the synthesized packets.
#[test]
fn dot11b_round_trip() {
    let mut rng = rng_for(9);
    for case in 0..CASES {
        let payload = random_bytes(&mut rng, 1..64);
        let rate = [
            DsssRate::Mbps1,
            DsssRate::Mbps2,
            DsssRate::Mbps5_5,
            DsssRate::Mbps11,
        ][rng.gen_range(0..4usize)];
        let tx = Dot11bTransmitter::new(rate);
        let frame = tx.transmit(&payload).unwrap();
        let rx = Dot11bReceiver::default();
        let received = rx.receive(&frame.chips).unwrap();
        assert_eq!(received.payload, payload, "case {case} rate {rate:?}");
        assert!(received.fcs_ok, "case {case} rate {rate:?}");
    }
}

/// A noiseless 802.15.4 link is error-free for arbitrary payloads.
#[test]
fn zigbee_round_trip() {
    let mut rng = rng_for(10);
    for case in 0..CASES {
        let payload = random_bytes(&mut rng, 0..100);
        let tx = ZigbeeTransmitter::default();
        let wave = tx.transmit(&payload).unwrap();
        let rx = ZigbeeReceiver::default();
        assert_eq!(
            rx.receive(&wave.samples).unwrap().payload,
            payload,
            "case {case}"
        );
    }
}

/// The tag is passive for arbitrary baseband inputs: no reflection
/// coefficient ever exceeds unit magnitude.
#[test]
fn tag_reflection_is_passive() {
    let mut rng = rng_for(11);
    for case in 0..CASES {
        let len = rng.gen_range(64..512);
        let baseband: Vec<Cplx> = (0..len)
            .map(|_| Cplx::expj(rng.gen_range(0.0..std::f64::consts::TAU)))
            .collect();
        let config = SsbConfig::new(176e6, 35.75e6);
        let reflection = reflection_sequence(&config, &baseband).unwrap();
        for g in reflection {
            assert!(g.abs() <= 1.0 + 1e-9, "case {case}");
        }
    }
}
