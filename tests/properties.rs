//! Property-based tests on the workspace's core invariants, using proptest.
//!
//! These complement the unit tests by exercising the framing, coding and
//! modulation round trips on arbitrary inputs, and the tag's passivity
//! constraint on arbitrary payloads.

use interscatter::backscatter::ssb::{reflection_sequence, SsbConfig};
use interscatter::ble::channels::BleChannel;
use interscatter::ble::packet::AdvertisingPacket;
use interscatter::dsp::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};
use interscatter::dsp::crc::{ble_crc24, crc16_ccitt, crc32_ieee_u32, BLE_ADV_CRC_INIT};
use interscatter::dsp::fft::{fft, ifft};
use interscatter::dsp::lfsr::Lfsr7;
use interscatter::dsp::Cplx;
use interscatter::wifi::dot11b::scrambler::DsssScrambler;
use interscatter::wifi::dot11b::{Dot11bReceiver, Dot11bTransmitter, DsssRate};
use interscatter::wifi::ofdm::convolutional::{encode, viterbi_decode, CodeRate};
use interscatter::wifi::ofdm::interleaver::{deinterleave, interleave};
use interscatter::zigbee::{ZigbeeReceiver, ZigbeeTransmitter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bit/byte packing round-trips for arbitrary byte strings.
    #[test]
    fn bits_bytes_round_trip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let bits = bytes_to_bits_lsb(&data);
        prop_assert_eq!(bits_to_bytes_lsb(&bits), data);
    }

    /// CRCs change when any single bit of the input changes.
    #[test]
    fn crc_detects_single_bit_flips(
        data in proptest::collection::vec(any::<u8>(), 1..48),
        byte_idx in 0usize..48,
        bit_idx in 0u8..8,
    ) {
        let byte_idx = byte_idx % data.len();
        let mut corrupted = data.clone();
        corrupted[byte_idx] ^= 1 << bit_idx;
        prop_assert_ne!(crc32_ieee_u32(&data), crc32_ieee_u32(&corrupted));
        prop_assert_ne!(crc16_ccitt(&data), crc16_ccitt(&corrupted));
        prop_assert_ne!(
            ble_crc24(&data, BLE_ADV_CRC_INIT),
            ble_crc24(&corrupted, BLE_ADV_CRC_INIT)
        );
    }

    /// BLE whitening is always an involution, for every channel and payload.
    #[test]
    fn whitening_is_involutive(
        channel in 0u8..40,
        bits in proptest::collection::vec(0u8..=1, 0..256),
    ) {
        let mut a = Lfsr7::ble_whitening_for_channel(channel);
        let whitened = a.whiten(&bits);
        let mut b = Lfsr7::ble_whitening_for_channel(channel);
        prop_assert_eq!(b.whiten(&whitened), bits);
    }

    /// The FFT/IFFT pair is the identity for arbitrary signals.
    #[test]
    fn fft_round_trip(values in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 64..=64)) {
        let x: Vec<Cplx> = values.iter().map(|&(re, im)| Cplx::new(re, im)).collect();
        let back = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// BLE advertising packets round-trip through framing and whitening for
    /// arbitrary payloads and addresses on every advertising channel.
    #[test]
    fn ble_packet_round_trip(
        address in proptest::array::uniform6(any::<u8>()),
        payload in proptest::collection::vec(any::<u8>(), 0..=31),
        channel_idx in 0usize..3,
    ) {
        let channel = [BleChannel::ADV_37, BleChannel::ADV_38, BleChannel::ADV_39][channel_idx];
        let packet = AdvertisingPacket::new(address, &payload).unwrap();
        let bits = packet.to_air_bits(channel).unwrap();
        let back = AdvertisingPacket::from_air_bits(&bits, channel).unwrap();
        prop_assert_eq!(back, packet);
    }

    /// The 802.11b self-synchronising scrambler round-trips for any seed.
    #[test]
    fn dsss_scrambler_round_trip(
        seed in 0u8..128,
        bits in proptest::collection::vec(0u8..=1, 0..512),
    ) {
        let mut tx = DsssScrambler::new(seed);
        let scrambled = tx.scramble(&bits);
        let mut rx = DsssScrambler::new(seed);
        prop_assert_eq!(rx.descramble(&scrambled), bits);
    }

    /// The 802.11a/g convolutional code round-trips at every rate for
    /// arbitrary terminated inputs.
    #[test]
    fn convolutional_round_trip(
        data in proptest::collection::vec(0u8..=1, 24..240),
        rate_idx in 0usize..3,
    ) {
        let rate = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters][rate_idx];
        // Pad to a multiple of 6 so every punctured rate stays aligned, then
        // terminate.
        let mut data = data;
        while data.len() % 6 != 0 {
            data.push(0);
        }
        data.extend([0u8; 6]);
        let coded = encode(&data, rate);
        let decoded = viterbi_decode(&coded, rate, true).unwrap();
        prop_assert_eq!(decoded, data);
    }

    /// The OFDM interleaver is a bijection for every supported constellation.
    #[test]
    fn interleaver_round_trip(
        bits in proptest::collection::vec(0u8..=1, 288..=288),
        n_bpsc_idx in 0usize..4,
    ) {
        let n_bpsc = [1usize, 2, 4, 6][n_bpsc_idx];
        let n_cbps = 48 * n_bpsc;
        let symbol = &bits[..n_cbps];
        let inter = interleave(symbol, n_cbps, n_bpsc);
        prop_assert_eq!(deinterleave(&inter, n_cbps, n_bpsc), symbol.to_vec());
    }

    /// A noiseless 802.11b link is error-free for arbitrary payloads at
    /// every rate — the "standards-compliant" invariant of the synthesized
    /// packets.
    #[test]
    fn dot11b_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        rate_idx in 0usize..4,
    ) {
        let rate = [DsssRate::Mbps1, DsssRate::Mbps2, DsssRate::Mbps5_5, DsssRate::Mbps11][rate_idx];
        let tx = Dot11bTransmitter::new(rate);
        let frame = tx.transmit(&payload).unwrap();
        let rx = Dot11bReceiver::default();
        let received = rx.receive(&frame.chips).unwrap();
        prop_assert_eq!(received.payload, payload);
        prop_assert!(received.fcs_ok);
    }

    /// A noiseless 802.15.4 link is error-free for arbitrary payloads.
    #[test]
    fn zigbee_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..100)) {
        let tx = ZigbeeTransmitter::default();
        let wave = tx.transmit(&payload).unwrap();
        let rx = ZigbeeReceiver::default();
        prop_assert_eq!(rx.receive(&wave.samples).unwrap().payload, payload);
    }

    /// The tag is passive for arbitrary baseband inputs: no reflection
    /// coefficient ever exceeds unit magnitude.
    #[test]
    fn tag_reflection_is_passive(
        phases in proptest::collection::vec(0.0f64..std::f64::consts::TAU, 64..512),
    ) {
        let baseband: Vec<Cplx> = phases.iter().map(|&p| Cplx::expj(p)).collect();
        let config = SsbConfig::new(176e6, 35.75e6);
        let reflection = reflection_sequence(&config, &baseband).unwrap();
        for g in reflection {
            prop_assert!(g.abs() <= 1.0 + 1e-9);
        }
    }
}
