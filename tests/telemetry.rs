//! Observability contract: telemetry subscriptions observe the engine
//! without perturbing it (byte-identical traces with any number attached),
//! and streaming-mode sketches answer the same quantile questions as the
//! stored-sample baseline to within the documented bound.

use interscatter::net::engine::NetworkSim;
use interscatter::net::scenario::Scenario;
use interscatter::net::telemetry::{Dataset, Filter, SinkSpec, Subscription, TelemetryKind};
use interscatter::net::trace_digest::fnv1a;

/// The four closed-loop presets: poll/ack MACs exercise every telemetry
/// emit site (grants, deliveries, transactions, losses, retries).
fn closed_loop_presets() -> Vec<Scenario> {
    vec![
        Scenario::hospital_ward(24).closed_loop(),
        Scenario::contact_lens_fleet(10).closed_loop(),
        Scenario::card_to_card_room(6).closed_loop(),
        Scenario::zigbee_wing(12).closed_loop(),
    ]
}

/// A deliberately busy subscription set: every sink kind, plus filters
/// along each axis (entity subset, kind subset, time window).
fn observe(base: Scenario) -> Scenario {
    base.subscribe(Subscription::new(
        "latency",
        Filter::all(),
        SinkSpec::Quantiles(Dataset::DeliveryLatencyMs),
    ))
    .subscribe(Subscription::new(
        "txn",
        Filter::all(),
        SinkSpec::Quantiles(Dataset::TransactionLatencyMs),
    ))
    .subscribe(Subscription::new(
        "poll",
        Filter::all().window(0.0, 5.0),
        SinkSpec::Quantiles(Dataset::PollLatencyMs),
    ))
    .subscribe(Subscription::new(
        "prr-front",
        Filter::all().tags([0usize, 1, 2]),
        SinkSpec::WindowedPrr { window_s: 1.0 },
    ))
    .subscribe(Subscription::new(
        "counters",
        Filter::all().kinds([
            TelemetryKind::Offered,
            TelemetryKind::Delivery,
            TelemetryKind::Loss,
            TelemetryKind::Dropped,
        ]),
        SinkSpec::Counters,
    ))
    .with_progress(1.0, false)
}

#[test]
fn subscriptions_leave_traces_byte_identical() {
    for base in closed_loop_presets() {
        let plain = NetworkSim::new(&base, 0x0B5E7).run().unwrap();
        let observed = NetworkSim::new(&observe(base.clone()), 0x0B5E7)
            .run()
            .unwrap();
        // Observation is free: the trace and metrics are bit-for-bit what
        // the unobserved run produced (telemetry consumes no RNG and
        // touches no queue), checked through the shared digest helper too.
        assert_eq!(
            plain.trace.to_bytes(),
            observed.trace.to_bytes(),
            "{}: subscriptions must not perturb the trace",
            base.name
        );
        assert_eq!(plain.trace.digest(), fnv1a(&observed.trace.to_bytes()));
        assert_eq!(
            format!("{:?}", plain.metrics),
            format!("{:?}", observed.metrics),
            "{}: subscriptions must not perturb metrics",
            base.name
        );
        // …but the observed run actually measured things.
        assert!(observed.telemetry.events > 0, "{}", base.name);
        assert_eq!(observed.telemetry.subscriptions.len(), 5);
        assert!(!observed.telemetry.progress.is_empty());
        let rendered = observed.telemetry.render();
        for name in ["latency", "txn", "poll", "prr-front", "counters"] {
            assert!(rendered.contains(name), "{rendered}");
        }
        // The unobserved run paid no collection (the event count is a free
        // loop counter, identical in both runs): empty report otherwise.
        assert_eq!(plain.telemetry.events, observed.telemetry.events);
        assert!(plain.telemetry.subscriptions.is_empty());
        assert!(plain.telemetry.progress.is_empty());
    }
}

#[test]
fn streaming_quantiles_match_stored_within_one_percent() {
    let base = Scenario::congested_ward(12).closed_loop();
    let stored = NetworkSim::new(&base, 0xC0FFEE).run().unwrap().metrics;
    let streamed = NetworkSim::new(&base.clone().with_streaming_metrics(), 0xC0FFEE)
        .run()
        .unwrap()
        .metrics;
    let sketches = streamed.streaming.as_ref().expect("streaming series");
    assert!(
        stored.latency_ms.samples().len() > 100,
        "need a busy run to compare quantiles"
    );
    // Identical sample streams, different containers: the sketch answer
    // must sit within 1% of the exact stored quantile (the log-bucket
    // width bounds the relative error at SKETCH_GAMMA/2 ≈ 0.25%).
    for q in [0.5, 0.9, 0.99] {
        for (label, exact, sketch) in [
            (
                "delivery",
                stored.latency_ms.quantile(q),
                sketches.latency_ms.quantile(q),
            ),
            (
                "poll",
                stored.poll_latency_ms.quantile(q),
                sketches.poll_latency_ms.quantile(q),
            ),
            (
                "transaction",
                stored.transaction_latency_ms.quantile(q),
                sketches.transaction_latency_ms.quantile(q),
            ),
        ] {
            let exact = exact.unwrap_or_else(|| panic!("{label} stored p{q} missing"));
            let sketch = sketch.unwrap_or_else(|| panic!("{label} sketch p{q} missing"));
            let rel = (sketch - exact).abs() / exact.max(1e-9);
            assert!(
                rel < 0.01,
                "{label} p{q}: sketch {sketch} vs stored {exact} (rel {rel})"
            );
        }
    }
    // Streaming mode holds no per-event storage: the memory is
    // O(subscriptions + entities), not O(events).
    assert!(streamed.latency_ms.is_empty());
    assert!(streamed.poll_latency_ms.is_empty());
    assert!(streamed.transaction_latency_ms.is_empty());
    assert!(streamed.mobility_series.iter().all(Vec::is_empty));
    assert!(streamed.occupancy_series.iter().all(Vec::is_empty));
    // And the two modes still agree on every counter-based readout.
    assert_eq!(stored.offered_packets(), streamed.offered_packets());
    assert_eq!(stored.delivered_packets(), streamed.delivered_packets());
    assert_eq!(stored.restripes(), streamed.restripes());
}

#[test]
fn streaming_run_reproduces_the_stored_trace() {
    // The metrics mode is observation too: switching containers must not
    // change a single byte of the event trace.
    let base = Scenario::congested_ward(10);
    let stored = NetworkSim::new(&base, 0x5EED).run().unwrap();
    let streamed = NetworkSim::new(&observe(base.with_streaming_metrics()), 0x5EED)
        .run()
        .unwrap();
    assert_eq!(stored.trace.to_bytes(), streamed.trace.to_bytes());
    assert_eq!(stored.trace.digest(), streamed.trace.digest());
}
