//! Uplink contract tests — the twin of `tests/closed_loop.rs` for the
//! *backscatter* direction: the engine's analytic margin model for uplink
//! decode must agree with `sim::uplink`'s full-receiver trials (DSSS
//! synthesis, noise, Barker despreading, FCS), the ROADMAP's uplink
//! spot-check item. One case samples the geometry **mid-walk** from a
//! mobility model, pinning the engine's moving-tag budgets against the
//! waveform pipeline at the same coordinates.

use interscatter::channel::tissue::TissuePath;
use interscatter::net::entities::TagProfile;
use interscatter::net::links::{EntityId, LinkBudget, LinkMatrix};
use interscatter::net::mobility::{Bounds, MobilityModel, MotionState, RandomWaypoint};
use interscatter::net::scenario::Scenario;
use interscatter::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The tag → receiver distance at which `scenario`'s median RSSI hits
/// `target_dbm` (the two-hop budget is monotone in either distance).
fn distance_for_rssi(scenario: &UplinkScenario, target_dbm: f64) -> f64 {
    let (mut lo, mut hi) = (0.01, 1000.0);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        let mut probe = scenario.clone();
        probe.tag_to_rx_m = mid;
        if probe.rssi_dbm() > target_dbm {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

/// Delivery rate of `trials` full-receiver packets at the scenario's
/// (shadowed) link budget.
fn waveform_delivery(scenario: &UplinkScenario, trials: usize, seed: u64) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (per, _) = scenario.wifi_error_rates(31, trials, &mut rng).unwrap();
    1.0 - per.per()
}

/// Delivery rate of the engine's margin model: shadowed RSSI draws against
/// the sensitivity cliff, exactly what `crates/net` runs per packet.
fn engine_delivery(budget: &LinkBudget, trials: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ok = (0..trials)
        .filter(|_| budget.packet_outcome(&mut rng).0)
        .count();
    ok as f64 / trials as f64
}

/// The engine's uplink budget shape for a Fig. 10 bench geometry: the
/// same combined two-hop shadowing sigma `LinkMatrix` computes, against a
/// Wi-Fi AP's −88 dBm sensitivity.
fn bench_budget(scenario: &UplinkScenario) -> LinkBudget {
    let sigma = scenario.propagation.shadowing_sigma_db;
    LinkBudget {
        median_rssi_dbm: scenario.rssi_dbm(),
        shadow_sigma_db: (2.0 * sigma * sigma).sqrt(),
        sensitivity_dbm: -88.0,
        noise_floor_dbm: -93.6,
    }
}

#[test]
fn engine_uplink_decode_matches_full_receiver_trials() {
    let base = UplinkScenario::fig10_bench(20.0, 3.0, 10.0);

    // +10 dB above the AP sensitivity the engine assumes: both models sit
    // on the good side of the cliff.
    let mut strong = base.clone();
    strong.tag_to_rx_m = distance_for_rssi(&base, -88.0 + 10.0);
    let waveform = waveform_delivery(&strong, 25, 0x09_11);
    let engine = engine_delivery(&bench_budget(&strong), 4000, 0xE28);
    assert!(
        waveform > 0.85 && engine > 0.85,
        "at +10 dB ({:.2} m): waveform {waveform:.3} vs engine {engine:.3}",
        strong.tag_to_rx_m
    );
    assert!(
        (waveform - engine).abs() < 0.15,
        "at +10 dB: waveform {waveform:.3} vs engine {engine:.3}"
    );

    // 10 dB below: both models collapse on the cliff's far side.
    let mut weak = base.clone();
    weak.tag_to_rx_m = distance_for_rssi(&base, -88.0 - 10.0);
    let waveform_far = waveform_delivery(&weak, 15, 0x09_12);
    let engine_far = engine_delivery(&bench_budget(&weak), 4000, 0xE29);
    assert!(
        waveform_far < 0.15 && engine_far < 0.15,
        "at -10 dB ({:.2} m): waveform {waveform_far:.3} vs engine {engine_far:.3}",
        weak.tag_to_rx_m
    );
}

#[test]
fn mobile_tag_budget_matches_waveform_geometry_mid_walk() {
    // Walk a patient through the ward with the same random-waypoint model
    // the engine ticks, and freeze the geometry mid-walk.
    let ward = Scenario::hospital_ward(4);
    let bounds = Bounds::room(12.0, 9.0, 1.0);
    let model = MobilityModel::RandomWaypoint(RandomWaypoint {
        speed_min_mps: 0.8,
        speed_max_mps: 1.2,
        pause_s: 0.5,
    });
    let mut state = MotionState::at(ward.tags[0].position());
    let mut rng = SmallRng::seed_from_u64(0x0005_7A1C);
    for _ in 0..150 {
        model.step(&mut state, &bounds, 0.1, &mut rng);
    }
    let mid_walk = state.position;
    assert!(state.displacement_m() > 0.5, "the tag must actually move");

    // The engine's budget at the frozen geometry.
    let mut moved = ward.clone();
    moved.place_tag(0, mid_walk);
    let matrix = LinkMatrix::build(&moved).unwrap();
    let budget = *matrix.budget(0);
    assert_eq!(matrix.position(EntityId::Tag(0)), mid_walk);

    // The same geometry through `sim::uplink`'s link model: an implant
    // package (loop antenna + tissue on both hops) illuminated by the
    // 20 dBm bedside helper, received on Wi-Fi channel 1.
    let d1 = ward.carriers[0].position().distance_m(&mid_walk);
    let d2 = ward.receivers[ward.tags[0].receiver]
        .position()
        .distance_m(&mid_walk);
    let twin = UplinkScenario {
        ble_tx_power_dbm: 20.0,
        source_to_tag_m: d1,
        tag_to_rx_m: d2,
        target: TargetPhy::Wifi(DsssRate::Mbps2),
        sideband: SidebandMode::Single,
        tag_antenna: TagProfile::NeuralImplant.antenna(),
        tag_tissue: TissuePath::neural_implant(),
        propagation: LogDistanceModel::indoor_los(2.412e9),
    };
    // The engine evaluates the illumination hop at the BLE tone frequency
    // (2.426 GHz) while the twin uses one model for both hops; across the
    // 2.4 GHz band that is a sub-dB difference.
    assert!(
        (budget.median_rssi_dbm - twin.rssi_dbm()).abs() < 0.5,
        "mid-walk at d1 {d1:.2} m, d2 {d2:.2} m: engine {:.2} dBm vs twin {:.2} dBm",
        budget.median_rssi_dbm,
        twin.rssi_dbm()
    );

    // And the decode rates agree at this geometry too: full-receiver
    // trials vs the engine's margin draw.
    let waveform = waveform_delivery(&twin, 20, 0x3A1);
    let engine = engine_delivery(&budget, 4000, 0x3A2);
    if engine > 0.9 {
        assert!(
            waveform > 0.6,
            "engine {engine:.3} vs waveform {waveform:.3}"
        );
    } else if engine < 0.1 {
        assert!(
            waveform < 0.4,
            "engine {engine:.3} vs waveform {waveform:.3}"
        );
    } else {
        assert!(
            (waveform - engine).abs() < 0.35,
            "engine {engine:.3} vs waveform {waveform:.3}"
        );
    }
}
